"""``repro.workloads.gen`` — seeded mini-C program generation.

Generated workloads are named ``gen:<fingerprint>:<seed>`` (fingerprint
grammar in :mod:`repro.workloads.gen.fingerprint`) and materialize
lazily through the ordinary registry: the first
``get_workload("gen:strided:7")`` plans, self-checks, and registers the
program under suite ``"gen"``, after which the harness, service jobs,
precompute/kernel sim paths, and predictor ablations consume it exactly
like a hand-written workload.  Materialization is deterministic per
name — any process that resolves the same name builds byte-identical
source and the same reference mirror — so names are sufficient
provenance to ship across service workers and result caches.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.workloads.gen.fingerprint import (
    CANONICAL,
    TOLERANCE,
    Fingerprint,
    format_fingerprint,
    parse_fingerprint,
)
from repro.workloads.gen.planner import (
    GEN_DEFAULT_SCALE,
    GenerationError,
    GenPlan,
    plan_program,
)
from repro.workloads.registry import REGISTRY, Workload, register

__all__ = [
    "CANONICAL",
    "TOLERANCE",
    "Fingerprint",
    "GenerationError",
    "GenPlan",
    "GEN_DEFAULT_SCALE",
    "format_fingerprint",
    "gen_name",
    "gen_workload_names",
    "generate",
    "materialize",
    "parse_fingerprint",
    "parse_gen_name",
    "provenance",
]

#: Plans of every workload this process has materialized, keyed by name.
_PLANS: Dict[str, GenPlan] = {}


def gen_name(fp: Fingerprint, seed: int) -> str:
    """The registry name of the generated workload for (*fp*, *seed*)."""
    return f"gen:{format_fingerprint(fp)}:{seed}"


def parse_gen_name(name: str) -> Tuple[Fingerprint, int]:
    """Split a ``gen:<fingerprint>:<seed>`` name; ValueError if malformed."""
    parts = name.split(":")
    if len(parts) != 3 or parts[0] != "gen":
        raise ValueError(
            f"bad generated-workload name {name!r}: expected "
            "'gen:<fingerprint>:<seed>' "
            "(e.g. 'gen:strided:7' or 'gen:n20p60e20-d2:0')"
        )
    fp = parse_fingerprint(parts[1])
    try:
        seed = int(parts[2])
    except ValueError:
        raise ValueError(
            f"bad generated-workload name {name!r}: seed {parts[2]!r} "
            "is not an integer"
        ) from None
    if seed < 0:
        raise ValueError(
            f"bad generated-workload name {name!r}: seed must be >= 0"
        )
    return fp, seed


def generate(fp: Fingerprint, seed: int) -> GenPlan:
    """Plan (or fetch the cached plan of) the program for (*fp*, *seed*)."""
    name = gen_name(fp, seed)
    plan = _PLANS.get(name)
    if plan is None:
        plan = plan_program(fp, seed)
        _PLANS[name] = plan
    return plan


def materialize(name: str) -> Workload:
    """Resolve a ``gen:`` name into a registered :class:`Workload`.

    Idempotent: repeated calls return the already-registered workload.
    Called from :func:`repro.workloads.registry.get_workload` as the
    fallback for unknown ``gen:``-prefixed names.
    """
    # Re-canonicalize so spelled variants ("gen:strided:7",
    # "gen:n20p70e10:7") resolve to one registration under the
    # canonical name — only canonical names enter the registry, so
    # suite listings never contain duplicates.
    fp, seed = parse_gen_name(name)
    canonical = gen_name(fp, seed)
    existing = REGISTRY.get(canonical)
    if existing is not None:
        return existing
    plan = generate(fp, seed)
    workload = Workload(
        name=canonical,
        suite="gen",
        description=(
            f"generated: fingerprint {plan.token} seed {seed} "
            f"(achieved n={plan.achieved['n']:.2f} "
            f"p={plan.achieved['p']:.2f} e={plan.achieved['e']:.2f})"
        ),
        source_template=plan.source_template,
        reference=plan.reference,
        default_scale=GEN_DEFAULT_SCALE,
    )
    register(workload)
    return workload


def provenance(name: str) -> Dict[str, object]:
    """Generator provenance of a ``gen:`` workload (planning if needed).

    The returned dict is JSON-ready and sufficient to regenerate the
    exact program: fingerprint token, seed, recipe weights, requested
    and achieved class mixes.
    """
    fp, seed = parse_gen_name(name)
    return generate(fp, seed).provenance()


def gen_workload_names() -> List[str]:
    """Names of the gen workloads materialized so far, sorted."""
    return sorted(
        name for name, workload in REGISTRY.items() if workload.suite == "gen"
    )
