"""Load-mix fingerprints: the target space of the program generator.

A :class:`Fingerprint` names a point in the Table-2 class-mix simplex —
the fractions of dynamic loads the compiled program should exhibit per
scheme class as measured by :mod:`repro.profiling`:

* ``nt`` — irregular loads (class ``n``: load-dependent reg+reg
  addressing, hash-mix indexed access; "no technique"),
* ``pd`` — strided loads (class ``p``: arithmetic-induction addresses
  the Figure-3 table predicts; "predicted"),
* ``ec`` — pointer-chasing loads (class ``e``: load-dependent reg+offset
  chains that win the ``R_addr`` early-calculation register).

Beyond the class simplex a fingerprint carries three texture knobs that
shape the program without changing its class mix: ``depth`` (loop-nest
depth of the kernels), ``alias`` (store-aliasing density — the weight of
the store/load interleaver recipe relative to the class budget), and
``ws`` (working-set size band of the data arrays).

Fingerprints have a compact canonical spelling used inside workload
names (``gen:<fingerprint>:<seed>``)::

    n20p60e20            fractions in percent (must sum to 100)
    n20p60e20-d2         ... with loop depth 2
    n20p60e20-a30        ... with alias density 30%
    n20p60e20-wl         ... with the large working-set band
    strided              a canonical named fingerprint (see CANONICAL)

:func:`parse_fingerprint` accepts both forms; :func:`format_fingerprint`
renders the compact form (named fingerprints round-trip through their
definition, not their name, so the name is sugar only).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict

#: Acceptance tolerance on each class fraction: the planner must land
#: every measured fraction within this absolute distance of the target.
TOLERANCE = 0.10

_WS_BANDS = ("small", "large")


@dataclass(frozen=True)
class Fingerprint:
    """A requested load-mix: class fractions plus texture knobs."""

    #: Fraction of dynamic loads in class ``n`` (irregular).
    nt: float
    #: Fraction of dynamic loads in class ``p`` (strided).
    pd: float
    #: Fraction of dynamic loads in class ``e`` (pointer-chasing).
    ec: float
    #: Loop-nest depth of the recipe kernels (1 = single loop).
    depth: int = 1
    #: Store-aliasing density in [0, 1]: weight of the store/load
    #: interleaver relative to the class-load budget (0 = no stores
    #: beyond incidental ones).
    alias: float = 0.0
    #: Working-set band of the data arrays: "small" | "large".
    ws: str = "small"

    def __post_init__(self) -> None:
        for field_name in ("nt", "pd", "ec"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"fingerprint fraction {field_name}={value!r} "
                    "must be in [0, 1]"
                )
        total = self.nt + self.pd + self.ec
        if abs(total - 1.0) > 0.015:
            raise ValueError(
                f"fingerprint fractions must sum to 1 (got {total:.3f})"
            )
        if not 1 <= self.depth <= 4:
            raise ValueError("fingerprint depth must be in [1, 4]")
        if not 0.0 <= self.alias <= 1.0:
            raise ValueError("fingerprint alias density must be in [0, 1]")
        if self.ws not in _WS_BANDS:
            raise ValueError(
                f"fingerprint ws must be one of {_WS_BANDS}, got {self.ws!r}"
            )

    def shares(self) -> Dict[str, float]:
        """Target fractions keyed like the profiler's class shares."""
        return {"n": self.nt, "p": self.pd, "e": self.ec}

    def token(self) -> str:
        """The compact canonical spelling (see :func:`format_fingerprint`)."""
        return format_fingerprint(self)


#: The four canonical fingerprints of the acceptance gate: the corners
#: the paper's suites actually populate (Table 2's interpreters are
#: EC-heavy, MediaBench's kernels PD-heavy, hash/sort codes NT-heavy)
#: plus the balanced centre.
CANONICAL: Dict[str, Fingerprint] = {
    "strided": Fingerprint(nt=0.20, pd=0.70, ec=0.10),
    "pointer": Fingerprint(nt=0.15, pd=0.25, ec=0.60),
    "irregular": Fingerprint(nt=0.60, pd=0.25, ec=0.15),
    "mixed": Fingerprint(nt=0.34, pd=0.33, ec=0.33),
}

_TOKEN_RE = re.compile(
    r"^n(?P<nt>\d{1,3})p(?P<pd>\d{1,3})e(?P<ec>\d{1,3})"
    r"(?P<mods>(-(d\d|a\d{1,3}|w[sl]))*)$"
)


def parse_fingerprint(token: str) -> Fingerprint:
    """Parse a compact or canonical fingerprint spelling.

    Raises :class:`ValueError` with the accepted grammar on mismatch.
    """
    if not isinstance(token, str) or not token:
        raise ValueError("fingerprint token must be a non-empty string")
    named = CANONICAL.get(token)
    if named is not None:
        return named
    match = _TOKEN_RE.match(token)
    if match is None:
        raise ValueError(
            f"bad fingerprint {token!r}: expected a canonical name "
            f"({', '.join(sorted(CANONICAL))}) or "
            "'n<pct>p<pct>e<pct>[-d<depth>][-a<pct>][-w<s|l>]' "
            "with the three percentages summing to 100"
        )
    nt = int(match.group("nt"))
    pd = int(match.group("pd"))
    ec = int(match.group("ec"))
    if nt + pd + ec != 100:
        raise ValueError(
            f"bad fingerprint {token!r}: class percentages sum to "
            f"{nt + pd + ec}, expected 100"
        )
    depth, alias, ws = 1, 0.0, "small"
    for mod in filter(None, match.group("mods").split("-")):
        if mod[0] == "d":
            depth = int(mod[1:])
        elif mod[0] == "a":
            alias = int(mod[1:]) / 100.0
        else:  # w
            ws = "large" if mod[1] == "l" else "small"
    return Fingerprint(
        nt=nt / 100.0, pd=pd / 100.0, ec=ec / 100.0,
        depth=depth, alias=alias, ws=ws,
    )


def format_fingerprint(fp: Fingerprint) -> str:
    """The compact canonical spelling of *fp* (inverse of parsing)."""
    token = (
        f"n{round(fp.nt * 100)}p{round(fp.pd * 100)}e{round(fp.ec * 100)}"
    )
    if fp.depth != 1:
        token += f"-d{fp.depth}"
    if fp.alias:
        token += f"-a{round(fp.alias * 100)}"
    if fp.ws != "small":
        token += "-wl"
    return token
