"""Differential testing of generated programs.

Every generated program carries its own oracle (the pure-Python recipe
mirrors), which turns the generator into a randomized cross-check of the
whole stack.  For each program the driver asserts three invariants:

* **emulator == reference** — the compiled program's OUT stream equals
  the mirror's, at every requested optimization level;
* **opt-level invariance** — ``-O0``, ``-O1`` and ``-O2`` all produce
  that same stream (a miscompiling pass shows up as a diff between
  levels even if both are internally consistent);
* **sim-path parity** — the timing stats of the proposed configuration
  are byte-identical between the inline pipeline and the
  precompute/replay-kernel fast path (the short-trace threshold is
  disabled so small differential programs exercise the streams too).

Any violated invariant becomes a :class:`Mismatch` in the report rather
than an exception, so one bad seed doesn't hide the rest of the batch.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable, List, Optional, Sequence

from repro import obs
from repro.compiler.driver import compile_source
from repro.sim.executor import execute
from repro.sim.machine import MachineConfig, PROPOSED
from repro.sim.pipeline import TimingSimulator
from repro.workloads.gen import materialize

#: Optimization levels every program is compiled and run at.
OPT_LEVELS = (0, 1, 2)

#: The canonical × seed grid of the acceptance gate: 4 fingerprints,
#: 50 seeds each = 200 distinct programs.
DEFAULT_FINGERPRINTS = ("strided", "pointer", "irregular", "mixed")


@dataclass
class Mismatch:
    """One violated invariant of one generated program."""

    name: str
    check: str  # "reference" | "opt-invariance" | "sim-parity"
    detail: str


@dataclass
class DifferentialReport:
    """Outcome of one differential batch."""

    programs: int = 0
    checks: int = 0
    mismatches: List[Mismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


def check_program(
    name: str,
    scale: float = 1.0,
    opt_levels: Sequence[int] = OPT_LEVELS,
    sim_paths: bool = True,
) -> DifferentialReport:
    """Run every differential invariant for one generated workload."""
    report = DifferentialReport(programs=1)
    workload = materialize(name)
    scaled = max(1, int(round(workload.default_scale * scale)))
    expected = workload.expected_output(scaled)
    source = workload.source(scaled)

    outputs = {}
    for level in opt_levels:
        result = compile_source(source, opt_level=level)
        exec_result = execute(result.program)
        outputs[level] = (list(exec_result.output), exec_result.trace)
        report.checks += 1
        if outputs[level][0] != expected:
            report.mismatches.append(Mismatch(
                name, "reference",
                f"opt_level={level}: emulator {outputs[level][0]!r} != "
                f"reference {expected!r}",
            ))

    levels = [lvl for lvl in opt_levels if lvl in outputs]
    if len(levels) > 1:
        report.checks += 1
        base = outputs[levels[0]][0]
        for level in levels[1:]:
            if outputs[level][0] != base:
                report.mismatches.append(Mismatch(
                    name, "opt-invariance",
                    f"opt_level={level} output differs from "
                    f"opt_level={levels[0]}",
                ))

    if sim_paths and 2 in outputs:
        from repro.sim import precompute

        trace = outputs[2][1]
        machine = MachineConfig().with_earlygen(PROPOSED)
        inline = TimingSimulator(trace, machine)._run_inline()
        # Disable the short-trace threshold so the stream/kernel path
        # actually engages at differential scales (parity-gate idiom).
        saved = precompute._PRECOMPUTE_MIN_N
        precompute._PRECOMPUTE_MIN_N = 0
        try:
            fast = precompute.simulate_many(trace, [PROPOSED])[0]
        finally:
            precompute._PRECOMPUTE_MIN_N = saved
        report.checks += 1
        if asdict(inline) != asdict(fast):
            diffs = [
                key for key in asdict(inline)
                if asdict(inline)[key] != asdict(fast)[key]
            ]
            report.mismatches.append(Mismatch(
                name, "sim-parity",
                f"inline != precompute SimStats (fields: {diffs})",
            ))
    return report


def run_differential(
    names: Sequence[str],
    scale: float = 1.0,
    opt_levels: Sequence[int] = OPT_LEVELS,
    sim_paths: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> DifferentialReport:
    """Differentially test every workload in *names*; aggregate report."""
    tracer = obs.current()
    total = DifferentialReport()
    with tracer.span("gen.differential", programs=len(names)):
        for i, name in enumerate(names, 1):
            report = check_program(
                name, scale=scale, opt_levels=opt_levels,
                sim_paths=sim_paths,
            )
            total.programs += report.programs
            total.checks += report.checks
            total.mismatches.extend(report.mismatches)
            if progress is not None:
                status = "ok" if report.ok else "MISMATCH"
                progress(f"[{i}/{len(names)}] {name}: {status}")
    return total


def batch_names(
    fingerprints: Sequence[str] = DEFAULT_FINGERPRINTS,
    seeds: int = 50,
    seed_base: int = 0,
) -> List[str]:
    """The ``gen:`` names of a fingerprints × seeds differential batch."""
    return [
        f"gen:{fp}:{seed_base + seed}"
        for fp in fingerprints
        for seed in range(seeds)
    ]
