"""Predictor stress suites: adversarial fingerprints per backend.

Each registered prediction backend (:mod:`repro.sim.predictors`) has a
failure mode the hand-written suite only brushes against; the generator
can aim straight at it.  A *stress suite* is a small set of fingerprints
chosen to be hostile to one backend:

* ``stride`` — the Figure-3 stride table assumes arithmetic address
  progressions, so its hostile mixes are chase/irregular-heavy (few
  PD-class loads to predict, and what PD remains is diluted by
  alias-interleaver traffic whose store-conflicts shrink the win);
* ``perceptron`` — learns correlated patterns, so pure-irregular
  hash-mix traffic with deep nests starves it of signal;
* ``cache-level`` — predicts which level services a load, so mixes that
  flap the working set between the small and large bands (and alias
  stores that dirty it) disturb its level stability.

The driver reuses the harness's :func:`predictor_ablation` on each
backend's suite, so "stress" results are computed by exactly the
machinery the paper-table runs use — one row per generated workload,
speedup per backend, dominated by the suite targeted at that backend.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro import obs
from repro.harness.experiments import ExperimentContext, predictor_ablation
from repro.workloads.gen import materialize

#: Adversarial fingerprint tokens per prediction backend.
STRESS_FINGERPRINTS: Dict[str, Sequence[str]] = {
    "stride": ("n25p5e70", "n60p10e30-a40", "n45p15e40-d2"),
    "perceptron": ("n80p10e10", "n70p10e20-d3", "n90p5e5-wl"),
    "cache-level": ("n30p50e20-wl", "n20p60e20-a60-wl", "n40p40e20-a80"),
}


def stress_names(
    backend: str, seeds: int = 2, seed_base: int = 0
) -> List[str]:
    """The ``gen:`` workload names of *backend*'s stress suite."""
    try:
        fingerprints = STRESS_FINGERPRINTS[backend]
    except KeyError:
        raise ValueError(
            f"no stress suite for backend {backend!r} "
            f"(known: {sorted(STRESS_FINGERPRINTS)})"
        ) from None
    return [
        f"gen:{fp}:{seed_base + seed}"
        for fp in fingerprints
        for seed in range(seeds)
    ]


def run_stress(
    backends: Optional[Sequence[str]] = None,
    seeds: int = 2,
    scale: float = 1.0,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, List[dict]]:
    """Ablation rows of every backend over its hostile suite.

    Returns ``{backend: rows}`` where each row set compares *all* the
    requested backends on that backend's adversarial fingerprints — the
    interesting signal is how far the targeted backend falls behind the
    others on its own suite.
    """
    if backends is None:
        backends = sorted(STRESS_FINGERPRINTS)
    for backend in backends:
        if backend not in STRESS_FINGERPRINTS:
            raise ValueError(
                f"no stress suite for backend {backend!r} "
                f"(known: {sorted(STRESS_FINGERPRINTS)})"
            )
    tracer = obs.current()
    results: Dict[str, List[dict]] = {}
    with tracer.span("gen.stress", backends=",".join(backends)):
        for backend in backends:
            names = stress_names(backend, seeds=seeds)
            for name in names:
                materialize(name)
            if progress is not None:
                progress(
                    f"stress[{backend}]: {len(names)} workloads "
                    f"({', '.join(names)})"
                )
            ctx = ExperimentContext(scale=scale)
            results[backend] = predictor_ablation(
                ctx, list(backends), names=names
            )
    return results
