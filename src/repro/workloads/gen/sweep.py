"""Synthetic-SPEC tier: sweep the Table-2 class-mix simplex.

The paper's Table 2 samples the (NT, PD, EC) load-mix simplex at the
twelve points SPEC95 happens to occupy.  This tier samples it *on a
grid*: every fingerprint ``n<a>p<b>e<c>`` with the three percentages
stepping by ``step`` and summing to 100 becomes a generated workload,
and the whole set runs through the standard harness machinery —
:class:`~repro.harness.runner.WorkloadRunner` with its fault isolation,
``--jobs`` process fan-out, and ``--result-cache`` reuse — producing a
fingerprint-vs-speedup table that shows how the proposed configuration's
win moves across the mix space (EC-heavy corners pay off, NT-heavy
corners pin the ceiling).

``python -m repro.workloads.gen sweep`` is the CLI; ``--markdown-out``
renders the table as Markdown for EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, List, Optional

from repro import obs
from repro.harness.experiments import ExperimentContext
from repro.harness.runner import (
    STATUS_OK,
    RunnerConfig,
    WorkloadRunner,
)
from repro.workloads.gen import materialize, provenance

#: Grid pitch (percentage points) of the default simplex sweep.
DEFAULT_STEP = 20

#: Fingerprint-vs-speedup table columns.
SWEEP_HEADERS = {
    "fingerprint": "Fingerprint",
    "seed": "Seed",
    "ach_nt": "A.NT%",
    "ach_pd": "A.PD%",
    "ach_ec": "A.EC%",
    "dyn_loads": "Dyn loads",
    "speedup": "Speedup",
}


def simplex_tokens(step: int = DEFAULT_STEP) -> List[str]:
    """Fingerprint tokens of the class-mix simplex grid at *step* %.

    Points are ordered NT-major, so the sweep walks from PD/EC-rich
    mixes (every technique applies) toward the NT corner (none does).
    """
    if not 0 < step <= 100 or 100 % step:
        raise ValueError("step must be a divisor of 100 in (0, 100]")
    tokens = []
    for nt in range(0, 101, step):
        for pd in range(0, 101 - nt, step):
            ec = 100 - nt - pd
            tokens.append(f"n{nt}p{pd}e{ec}")
    return tokens


def sweep_names(step: int = DEFAULT_STEP, seeds: int = 1) -> List[str]:
    """The ``gen:`` workload names of one simplex sweep."""
    return [
        f"gen:{token}:{seed}"
        for token in simplex_tokens(step)
        for seed in range(seeds)
    ]


def run_sweep(
    step: int = DEFAULT_STEP,
    seeds: int = 1,
    scale: float = 1.0,
    jobs: int = 1,
    result_store=None,
    timeout: float = 0.0,
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Materialize, run, and tabulate one simplex sweep.

    Returns ``{"rows": [...], "outcomes": [...], "degraded": [...]}``
    where ``rows`` is the fingerprint-vs-speedup table (one row per
    generated workload, geomean last).
    """
    names = sweep_names(step, seeds)
    if progress is not None:
        progress(
            f"sweep: {len(names)} generated workloads "
            f"(step {step}%, {seeds} seed{'s' if seeds != 1 else ''})"
        )
    tracer = obs.current()
    with tracer.span("gen.sweep", step=step, seeds=seeds, jobs=jobs):
        # Materialize up front (planning is sequential and cheap); the
        # fork-based worker pools inherit the populated registry.
        for name in names:
            materialize(name)
        ctx = ExperimentContext(scale=scale)
        runner = WorkloadRunner(
            ctx,
            RunnerConfig(timeout=timeout),
            progress=progress,
            jobs=jobs,
            result_store=result_store,
        )
        outcomes = runner.run_suite(names)

    rows: List[dict] = []
    speedups: List[float] = []
    for outcome in outcomes:
        prov = provenance(outcome.name)
        row = {
            "fingerprint": prov["fingerprint"],
            "seed": prov["seed"],
            "ach_nt": prov["achieved"]["n"] * 100,
            "ach_pd": prov["achieved"]["p"] * 100,
            "ach_ec": prov["achieved"]["e"] * 100,
        }
        if outcome.status == STATUS_OK and "gen" in outcome.rows:
            fragment = outcome.rows["gen"]
            row["dyn_loads"] = fragment["dyn_loads"]
            row["speedup"] = fragment["speedup"]
            speedups.append(fragment["speedup"])
        else:
            row["dyn_loads"] = outcome.status.upper()
            row["speedup"] = outcome.status.upper()
        rows.append(row)
    if speedups:
        geomean = 1.0
        for value in speedups:
            geomean *= value
        geomean **= 1.0 / len(speedups)
        rows.append({
            "fingerprint": "geomean",
            "seed": "",
            "ach_nt": "",
            "ach_pd": "",
            "ach_ec": "",
            "dyn_loads": "",
            "speedup": geomean,
        })
    return {
        "rows": rows,
        "outcomes": outcomes,
        "degraded": [o.name for o in outcomes if o.degraded],
    }


def render_markdown(rows: List[dict], scale: float, step: int) -> str:
    """The sweep table as a Markdown document fragment."""
    lines = [
        "### Synthetic-SPEC sweep (generated workloads)",
        "",
        f"Class-mix simplex at {step}% pitch, scale {scale:g}; speedup "
        "is the proposed configuration (256-entry table, 1 cached "
        "register, compiler selection) over no early generation.",
        "",
        "| " + " | ".join(SWEEP_HEADERS.values()) + " |",
        "|" + "---|" * len(SWEEP_HEADERS),
    ]
    for row in rows:
        cells = []
        for key in SWEEP_HEADERS:
            value = row.get(key, "")
            if isinstance(value, float):
                cells.append(f"{value:.2f}")
            else:
                cells.append(str(value))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines) + "\n"


def write_markdown(
    path, rows: List[dict], scale: float, step: int
) -> Path:
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(render_markdown(rows, scale, step), encoding="utf-8")
    return target
