"""Seeded planner: search recipe weights until the measured load mix
of the assembled program lands on the requested fingerprint.

The planner exploits the near-purity of the recipes
(:mod:`repro.workloads.gen.recipes`): each class-bearing recipe
contributes dynamic loads almost exclusively to one profiler class, so
the measured class shares respond (approximately) linearly to the
per-recipe rep weights.  The search is therefore short and convergent:

1. Seed analytic weights from each recipe's per-unit load count and the
   requested class fractions (one compile needed, zero probes).
2. Probe: compile the assembled program at its default scale, emulate
   it, and measure ``dynamic_class_shares()`` via
   :func:`repro.profiling.profile_trace` — the *same* classifier the
   rest of the reproduction uses, so "achieved" means achieved on the
   real pipeline, not on a generator-side model.
3. Multiplicatively rescale each class recipe's weight by
   ``target/measured`` and repeat, keeping the best probe, until every
   class fraction is within the inner tolerance or the iteration budget
   runs out.

Probing at the workload's *default* scale matters: constant overheads
(data initialization, per-call head loads) dilute differently at
different scales, so a mix tuned at a probe-only scale would drift at
the scale the harness actually runs.

Everything is deterministic per (fingerprint, seed): the RNG is seeded
from the canonical fingerprint token and the seed string — never from
``hash()`` or set order — so the same name materializes byte-identical
source in any process.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro import obs
from repro.compiler.driver import compile_source
from repro.errors import ReproError
from repro.profiling import profile_trace
from repro.sim.executor import execute
from repro.workloads.gen.fingerprint import Fingerprint, format_fingerprint
from repro.workloads.gen.recipes import (
    Recipe,
    build_source,
    make_recipes,
    reference_output,
)

#: Default harness scale of generated workloads (reps of the main loop).
#: Four reps of a ~1.2k-load budget clears the precompute streaming
#: threshold (``_PRECOMPUTE_MIN_N``) so gen workloads exercise the
#: array/kernel sim paths like the hand-written suite does.
GEN_DEFAULT_SCALE = 4

#: Planner iteration budget (probe compiles + emulations).
_MAX_ITERS = 7

#: Inner convergence tolerance — tighter than the acceptance
#: :data:`repro.workloads.gen.fingerprint.TOLERANCE` so accepted plans
#: have slack left for scale-induced drift.
_INNER_TOL = 0.07

#: Weight bounds for any recipe the fingerprint actually requests.
_MAX_WEIGHT = 5000

#: Map profiler class -> recipe role that controls it.
_CLASS_ROLE = {"p": "strided", "e": "chase", "n": "irregular"}


class GenerationError(ReproError):
    """The planner could not realize a fingerprint, or self-check failed."""


@dataclass
class GenPlan:
    """A finished generation: source template, mirror inputs, provenance."""

    token: str
    seed: int
    fingerprint: Fingerprint
    recipes: List[Recipe] = field(repr=False)
    weights: Dict[str, int]
    source_template: str = field(repr=False)
    #: Measured dynamic class shares at the default scale.
    achieved: Dict[str, float]
    #: Probe iterations spent (including the accepted one).
    iterations: int
    #: Per-main-loop-rep class-load budget the weights were seeded from.
    budget: int

    def reference(self, scale: int) -> List[int]:
        """Expected OUT stream of the generated program at *scale*."""
        return reference_output(self.recipes, self.weights, scale)

    def max_error(self) -> float:
        """Largest |achieved - requested| over the three class fractions."""
        target = self.fingerprint.shares()
        return max(
            abs(self.achieved[cls] - target[cls]) for cls in ("n", "p", "e")
        )

    def provenance(self) -> Dict[str, object]:
        """JSON-ready generator provenance for manifests and events."""
        return {
            "fingerprint": self.token,
            "seed": self.seed,
            "requested": {
                key: round(value, 4)
                for key, value in self.fingerprint.shares().items()
            },
            "achieved": {
                key: round(value, 4) for key, value in self.achieved.items()
            },
            "weights": dict(self.weights),
            "depth": self.fingerprint.depth,
            "alias": self.fingerprint.alias,
            "ws": self.fingerprint.ws,
            "budget": self.budget,
            "iterations": self.iterations,
        }


def _initial_weights(
    fp: Fingerprint, recipes: List[Recipe], budget: int
) -> Dict[str, int]:
    per_unit = {recipe.role: recipe.per_unit_loads() for recipe in recipes}
    weights: Dict[str, int] = {}
    for cls, role in _CLASS_ROLE.items():
        share = fp.shares()[cls]
        if share < 0.01:
            weights[role] = 0
            continue
        weights[role] = max(
            1, min(_MAX_WEIGHT, round(share * budget / per_unit[role]))
        )
    # The alias interleaver is a texture knob: its (strided-class) loads
    # are budgeted against the PD fraction so the planner's p-control
    # can absorb them by shrinking the strided recipe.
    alias_budget = fp.alias * max(fp.pd, 0.1) * budget * 0.5
    weights["alias"] = (
        max(1, min(_MAX_WEIGHT, round(alias_budget / per_unit["alias"])))
        if alias_budget >= 1.0
        else 0
    )
    return weights


def _probe(
    recipes: List[Recipe], weights: Dict[str, int]
) -> Tuple[str, Dict[str, float]]:
    """Compile + emulate at default scale; return (template, shares)."""
    template = build_source(recipes, weights)
    source = template.replace("__SCALE__", str(GEN_DEFAULT_SCALE))
    result = compile_source(source)
    exec_result = execute(result.program)
    profile = profile_trace(result.program, exec_result.trace)
    return template, profile.dynamic_class_shares()


def plan_program(fp: Fingerprint, seed: int) -> GenPlan:
    """Realize *fp* as a concrete program plan, deterministically per seed.

    Raises :class:`GenerationError` if the planner cannot bring every
    measured class fraction within the acceptance tolerance, or if the
    accepted program fails its own reference self-check.
    """
    token = format_fingerprint(fp)
    rng = random.Random(f"repro.gen:{token}:{seed}")
    recipes = make_recipes(rng, fp.ws, fp.depth)
    budget = rng.randint(900, 1400)
    weights = _initial_weights(fp, recipes, budget)
    target = fp.shares()

    best: Dict[str, object] = {}
    best_err = float("inf")
    iterations = 0
    for _ in range(_MAX_ITERS):
        iterations += 1
        template, shares = _probe(recipes, weights)
        err = max(abs(shares[cls] - target[cls]) for cls in ("n", "p", "e"))
        if err < best_err:
            best_err = err
            best = {
                "template": template,
                "shares": shares,
                "weights": dict(weights),
            }
        if err <= _INNER_TOL:
            break
        for cls, role in _CLASS_ROLE.items():
            if weights[role] <= 0:
                continue
            ratio = target[cls] / max(shares[cls], 0.02)
            # Damp the multiplicative step to avoid oscillating across
            # the (mildly) coupled class shares.
            ratio = max(0.25, min(4.0, ratio))
            weights[role] = max(
                1, min(_MAX_WEIGHT, round(weights[role] * ratio))
            )

    from repro.workloads.gen.fingerprint import TOLERANCE

    if best_err > TOLERANCE:
        raise GenerationError(
            f"planner failed to realize fingerprint {token!r} seed {seed}: "
            f"best class-fraction error {best_err:.3f} exceeds tolerance "
            f"{TOLERANCE:.2f} after {iterations} probes "
            f"(achieved {best['shares']!r})"
        )

    plan = GenPlan(
        token=token,
        seed=seed,
        fingerprint=fp,
        recipes=recipes,
        weights=best["weights"],
        source_template=best["template"],
        achieved=best["shares"],
        iterations=iterations,
        budget=budget,
    )

    # Self-check: the accepted program's emulator output must equal the
    # pure-Python mirror at the default scale before anything registers.
    source = plan.source_template.replace("__SCALE__", str(GEN_DEFAULT_SCALE))
    exec_result = execute(compile_source(source).program)
    expected = plan.reference(GEN_DEFAULT_SCALE)
    if list(exec_result.output) != expected:
        raise GenerationError(
            f"generated program {token!r} seed {seed} failed its reference "
            f"self-check: emulator {list(exec_result.output)!r} != "
            f"reference {expected!r}"
        )

    tracer = obs.current()
    if tracer.enabled:
        tracer.event(
            "gen.fingerprint",
            fingerprint=plan.token,
            seed=plan.seed,
            requested=plan.provenance()["requested"],
            achieved=plan.provenance()["achieved"],
            weights=dict(plan.weights),
            iterations=plan.iterations,
            max_error=round(plan.max_error(), 4),
        )
    return plan
