"""CLI of the generated-workload subsystem.

Usage::

    python -m repro.workloads.gen emit gen:strided:7 [--scale F] [--ref]
    python -m repro.workloads.gen diff [--fingerprints T[,T...]]
                                       [--seeds N] [--seed-base N]
                                       [--scale F] [--opt-levels 0,1,2]
                                       [--no-sim-paths]
    python -m repro.workloads.gen stress [--backends B[,B...]]
                                         [--seeds N] [--scale F]
    python -m repro.workloads.gen sweep [--step PCT] [--seeds N]
                                        [--scale F] [--jobs N]
                                        [--result-cache DIR]
                                        [--timeout SECS]
                                        [--markdown-out FILE]
                                        [--trace-out DIR]

``emit`` prints a generated program (or its reference output);
``diff`` runs the differential driver (exit 1 on any mismatch);
``stress`` runs the per-backend adversarial suites; ``sweep`` is the
synthetic-SPEC tier over the class-mix simplex.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro import obs
from repro.workloads.gen import (
    GenerationError,
    materialize,
    provenance,
)


def _progress(message: str) -> None:
    print(message, file=sys.stderr, flush=True)


def _cmd_emit(args) -> int:
    workload = materialize(args.name)
    scaled = max(1, int(round(workload.default_scale * args.scale)))
    if args.ref:
        for value in workload.expected_output(scaled):
            print(value)
    else:
        print(workload.source(scaled), end="")
    if args.provenance:
        import json
        print(json.dumps(provenance(args.name), indent=1, sort_keys=True),
              file=sys.stderr)
    return 0


def _cmd_diff(args) -> int:
    from repro.workloads.gen.differential import (
        batch_names,
        run_differential,
    )

    fingerprints = [f.strip() for f in args.fingerprints.split(",")
                    if f.strip()]
    opt_levels = tuple(
        int(level) for level in args.opt_levels.split(",") if level.strip()
    )
    names = batch_names(fingerprints, seeds=args.seeds,
                        seed_base=args.seed_base)
    report = run_differential(
        names,
        scale=args.scale,
        opt_levels=opt_levels,
        sim_paths=not args.no_sim_paths,
        progress=_progress if args.verbose else None,
    )
    print(
        f"differential: {report.programs} programs, {report.checks} "
        f"checks, {len(report.mismatches)} mismatches"
    )
    for mismatch in report.mismatches:
        print(f"MISMATCH {mismatch.name} [{mismatch.check}]: "
              f"{mismatch.detail}")
    return 1 if report.mismatches else 0


def _cmd_stress(args) -> int:
    from repro.harness.reporting import (
        format_table,
        predictor_ablation_headers,
    )
    from repro.workloads.gen.stress import STRESS_FINGERPRINTS, run_stress

    backends = (
        [b.strip() for b in args.backends.split(",") if b.strip()]
        if args.backends else sorted(STRESS_FINGERPRINTS)
    )
    results = run_stress(
        backends, seeds=args.seeds, scale=args.scale, progress=_progress
    )
    headers = predictor_ablation_headers(backends)
    for backend in backends:
        print()
        print(format_table(
            results[backend],
            columns=list(headers),
            headers=headers,
            title=f"Stress suite targeting {backend!r} "
                  "(speedup vs no early generation)",
        ))
    return 0


def _cmd_sweep(args) -> int:
    from repro.harness.reporting import format_table
    from repro.workloads.gen.sweep import (
        SWEEP_HEADERS,
        run_sweep,
        write_markdown,
    )

    result_store = None
    if args.result_cache is not None:
        from repro.service.store import ResultStore
        result_store = ResultStore(args.result_cache)
    result = run_sweep(
        step=args.step,
        seeds=args.seeds,
        scale=args.scale,
        jobs=args.jobs,
        result_store=result_store,
        timeout=args.timeout,
        progress=_progress,
    )
    print()
    print(format_table(
        result["rows"],
        columns=list(SWEEP_HEADERS),
        headers=SWEEP_HEADERS,
        title="Synthetic-SPEC sweep — fingerprint vs proposed-config "
              "speedup",
    ))
    if args.markdown_out is not None:
        path = write_markdown(
            args.markdown_out, result["rows"], args.scale, args.step
        )
        print(f"wrote {path}", file=sys.stderr)
    if result["degraded"]:
        print(f"degraded: {', '.join(result['degraded'])}",
              file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads.gen",
        description="seeded mini-C program generation: emit, "
        "differential-test, stress predictors, sweep the class-mix "
        "simplex",
    )
    parser.add_argument("--trace-out", default=None, metavar="DIR",
                        help="write a JSONL span/event trace under DIR")
    sub = parser.add_subparsers(dest="cmd", required=True)

    emit = sub.add_parser("emit", help="print one generated program")
    emit.add_argument("name", help="workload name, e.g. gen:strided:7")
    emit.add_argument("--scale", type=float, default=1.0)
    emit.add_argument("--ref", action="store_true",
                      help="print the reference OUT stream instead")
    emit.add_argument("--provenance", action="store_true",
                      help="also print provenance JSON to stderr")

    diff = sub.add_parser("diff", help="differential-test a batch")
    diff.add_argument("--fingerprints",
                      default="strided,pointer,irregular,mixed")
    diff.add_argument("--seeds", type=int, default=50,
                      help="seeds per fingerprint (default 50)")
    diff.add_argument("--seed-base", type=int, default=0)
    diff.add_argument("--scale", type=float, default=1.0)
    diff.add_argument("--opt-levels", default="0,1,2")
    diff.add_argument("--no-sim-paths", action="store_true",
                      help="skip the inline-vs-precompute parity check")
    diff.add_argument("--verbose", action="store_true")

    stress = sub.add_parser("stress", help="per-backend hostile suites")
    stress.add_argument("--backends", default=None,
                        metavar="B[,B...]")
    stress.add_argument("--seeds", type=int, default=2)
    stress.add_argument("--scale", type=float, default=1.0)

    sweep = sub.add_parser("sweep", help="synthetic-SPEC simplex sweep")
    sweep.add_argument("--step", type=int, default=20,
                       help="simplex grid pitch in percent (default 20)")
    sweep.add_argument("--seeds", type=int, default=1,
                       help="seeds per grid point (default 1)")
    sweep.add_argument("--scale", type=float, default=1.0)
    sweep.add_argument("--jobs", type=int, default=1)
    sweep.add_argument("--result-cache", default=None, metavar="DIR")
    sweep.add_argument("--timeout", type=float, default=0.0)
    sweep.add_argument("--markdown-out", default=None, metavar="FILE")
    args = parser.parse_args(argv)

    try:
        if args.trace_out is not None:
            obs.configure(args.trace_out, command=f"gen-{args.cmd}",
                          worker="main")
        if args.cmd == "emit":
            return _cmd_emit(args)
        if args.cmd == "diff":
            return _cmd_diff(args)
        if args.cmd == "stress":
            return _cmd_stress(args)
        return _cmd_sweep(args)
    except (GenerationError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if args.trace_out is not None:
            obs.disable()


if __name__ == "__main__":
    raise SystemExit(main())
