"""Composable mini-C recipe generators and their Python mirrors.

Each :class:`Recipe` emits one self-contained kernel — globals, an init
function, and a ``kern(int reps)`` function — whose loads land
dominantly in one scheme class of the paper's classifier
(:mod:`repro.compiler.classify`):

* :class:`StridedRecipe` — arithmetic-induction array scans.  Addresses
  derive from loop counters, so the loads classify ``ld_p`` and the
  Figure-3 stride table predicts them.
* :class:`ChaseRecipe` — a linked-list walk.  Every load's base register
  was itself loaded (``p->val`` / ``p = p->next``), reg+offset
  addressing, one base group: the group wins ``R_addr`` and classifies
  ``ld_e``.
* :class:`IrregularRecipe` — hash-mix indexed chasing through an int
  table (``v = tab[(v + r) & m]``).  Load-dependent *reg+reg*
  addressing: ``ld_n``, the class no technique covers.
* :class:`AliasRecipe` — a store/load interleaver over one buffer.  Its
  loads are strided (``ld_p``) but every iteration also stores into the
  same working set, exercising the store-queue/forwarding interlocks.

All data is initialized from seeded *compile-time* constants (no runtime
RNG), so the kernels' class mixes are nearly pure — which is what lets
the planner treat recipe weights as a linear control over the measured
fingerprint — and every recipe carries an exact pure-Python mirror, so
generated programs stay self-checking like the hand-written suite.

Determinism contract: all randomness comes from the ``random.Random``
instance handed to the constructors; emission itself is pure string
assembly (no sets, no hashing), so one seed yields byte-identical
source in any process.
"""

from __future__ import annotations

import random
from typing import Dict, List

#: Checksum masks shared with the hand-written suite.
_ACC_MASK = 16777215
_KERN_MASK = 65535


def _pow2_choice(rng: random.Random, ws: str) -> int:
    if ws == "large":
        return rng.choice((1024, 2048))
    return rng.choice((64, 128, 256))


def _outer_loops(depth: int) -> int:
    """Decorative loop-nest levels around the rep loop (depth >= 1)."""
    return depth - 1


class Recipe:
    """One kernel generator; subclasses fill the emission/mirror pair."""

    #: Planner role, also the key of its weight: "strided" | "chase" |
    #: "irregular" | "alias".
    role: str = ""
    #: Dominant profiler class of this kernel's loads ("p"/"e"/"n").
    dominant: str = ""

    def __init__(self, index: int, rng: random.Random, ws: str, depth: int):
        self.index = index
        self.tag = f"g{index}"
        self.depth = depth
        #: Work multiplier of the decorative outer loops (trip 2 each).
        self.mult = 2 ** _outer_loops(depth)

    # -- emission ----------------------------------------------------------

    def decls_c(self) -> str:
        raise NotImplementedError

    def init_c(self) -> str:
        raise NotImplementedError

    def kernel_c(self) -> str:
        raise NotImplementedError

    def _wrap_kernel(self, decls: List[str], body: List[str]) -> str:
        """A ``kern_<tag>(int reps)`` function with decorative outers."""
        outers = _outer_loops(self.depth)
        lines = [f"int kern_{self.tag}(int reps) {{"]
        all_decls = ["int r; int t = 0;"] + decls
        if outers:
            all_decls.append(
                " ".join(f"int o{k};" for k in range(outers))
            )
        lines.extend(f"    {d}" for d in all_decls)
        indent = "    "
        for k in range(outers):
            lines.append(f"{indent}for (o{k} = 0; o{k} < 2; o{k}++) {{")
            indent += "    "
        lines.append(f"{indent}for (r = 0; r < reps; r++) {{")
        for stmt in body:
            lines.append(f"{indent}    {stmt}")
        lines.append(f"{indent}}}")
        for k in range(outers):
            indent = indent[:-4]
            lines.append(f"{indent}}}")
        lines.extend(self._epilogue_c())
        lines.append("    return t;")
        lines.append("}")
        return "\n".join(lines)

    def _epilogue_c(self) -> List[str]:
        """Statements between the loop nest and ``return t;``."""
        return []

    # -- planner model -----------------------------------------------------

    def per_unit_loads(self) -> int:
        """Approximate dominant-class loads per weight unit (analytic)."""
        raise NotImplementedError

    # -- Python mirror -----------------------------------------------------

    def ref_make_state(self):
        raise NotImplementedError

    def ref_call(self, state, reps: int) -> int:
        raise NotImplementedError


class StridedRecipe(Recipe):
    role = "strided"
    dominant = "p"

    def __init__(self, index, rng, ws, depth):
        super().__init__(index, rng, ws, depth)
        if ws == "large":
            self.n = 16 * rng.randint(64, 128)
        else:
            self.n = 16 * rng.randint(6, 16)
        self.stride = rng.choice((1, 1, 2, 4))
        self.mul = rng.randrange(3, 97, 2)
        self.xor = rng.randrange(0, 4096)

    def decls_c(self) -> str:
        return f"int arr_{self.tag}[{self.n}];"

    def init_c(self) -> str:
        return (
            f"void init_{self.tag}() {{\n"
            f"    int i;\n"
            f"    for (i = 0; i < {self.n}; i++) {{\n"
            f"        arr_{self.tag}[i] = ((i * {self.mul}) ^ {self.xor})"
            f" & 4095;\n"
            f"    }}\n"
            f"}}"
        )

    def kernel_c(self) -> str:
        return self._wrap_kernel(
            ["int i;"],
            [
                f"for (i = 0; i < {self.n}; i += {self.stride}) {{",
                f"    t = (t + arr_{self.tag}[i]) & {_KERN_MASK};",
                "}",
            ],
        )

    def per_unit_loads(self) -> int:
        return self.mult * (1 + (self.n - 1) // self.stride)

    def ref_make_state(self):
        return [((i * self.mul) ^ self.xor) & 4095 for i in range(self.n)]

    def ref_call(self, arr, reps: int) -> int:
        t = 0
        for _outer in range(self.mult):
            for _r in range(reps):
                for i in range(0, self.n, self.stride):
                    t = (t + arr[i]) & _KERN_MASK
        return t


class ChaseRecipe(Recipe):
    role = "chase"
    dominant = "e"

    def __init__(self, index, rng, ws, depth):
        super().__init__(index, rng, ws, depth)
        if ws == "large":
            self.nk = rng.randint(96, 224)
        else:
            self.nk = rng.randint(12, 40)
        self.mul = rng.randrange(5, 61, 2)
        self.add = rng.randrange(0, 256)

    def decls_c(self) -> str:
        node = f"node_{self.tag}"
        return (
            f"struct {node} {{ int val; struct {node} *next; }};\n"
            f"struct {node} *head_{self.tag};"
        )

    def init_c(self) -> str:
        node = f"node_{self.tag}"
        return (
            f"void init_{self.tag}() {{\n"
            f"    int i;\n"
            f"    head_{self.tag} = 0;\n"
            f"    for (i = 0; i < {self.nk}; i++) {{\n"
            f"        struct {node} *n = (struct {node} *) "
            f"malloc(sizeof(struct {node}));\n"
            f"        n->val = ((i * {self.mul}) + {self.add}) & 255;\n"
            f"        n->next = head_{self.tag};\n"
            f"        head_{self.tag} = n;\n"
            f"    }}\n"
            f"}}"
        )

    def kernel_c(self) -> str:
        node = f"node_{self.tag}"
        return self._wrap_kernel(
            [f"struct {node} *p;"],
            [
                f"p = head_{self.tag};",
                "while (p) {",
                f"    t = (t + p->val) & {_KERN_MASK};",
                "    p = p->next;",
                "}",
            ],
        )

    def per_unit_loads(self) -> int:
        return self.mult * (2 * self.nk + 1)

    def ref_make_state(self):
        # Head insertion reverses creation order; walk order is the
        # traversal the C kernel sees.
        return [
            ((i * self.mul) + self.add) & 255
            for i in reversed(range(self.nk))
        ]

    def ref_call(self, vals, reps: int) -> int:
        t = 0
        for _outer in range(self.mult):
            for _r in range(reps):
                for val in vals:
                    t = (t + val) & _KERN_MASK
        return t


class IrregularRecipe(Recipe):
    role = "irregular"
    dominant = "n"

    def __init__(self, index, rng, ws, depth):
        super().__init__(index, rng, ws, depth)
        self.sz = _pow2_choice(rng, ws)
        self.mask = self.sz - 1
        self.mul = rng.randrange(3, 127, 2)
        self.add = rng.randrange(0, 1024)
        self.xc = rng.randrange(1, self.sz)
        self.start = rng.randrange(0, self.sz)

    def decls_c(self) -> str:
        return f"int tab_{self.tag}[{self.sz}];\nint cur_{self.tag};"

    def init_c(self) -> str:
        return (
            f"void init_{self.tag}() {{\n"
            f"    int i;\n"
            f"    for (i = 0; i < {self.sz}; i++) {{\n"
            f"        tab_{self.tag}[i] = ((i * {self.mul} + {self.add})"
            f" ^ (i >> 2)) & 8191;\n"
            f"    }}\n"
            f"    cur_{self.tag} = {self.start};\n"
            f"}}"
        )

    def kernel_c(self) -> str:
        tab = f"tab_{self.tag}"
        return self._wrap_kernel(
            [f"int v;", f"v = cur_{self.tag};"],
            [
                f"v = {tab}[(v + r) & {self.mask}];",
                f"t = (t + v) & {_KERN_MASK};",
                f"v = {tab}[(v ^ {self.xc}) & {self.mask}];",
                f"t = (t + v) & {_KERN_MASK};",
            ],
        )

    def _epilogue_c(self) -> List[str]:
        return [f"    cur_{self.tag} = v;"]

    def per_unit_loads(self) -> int:
        return self.mult * 2

    def ref_make_state(self):
        tab = [
            ((i * self.mul + self.add) ^ (i >> 2)) & 8191
            for i in range(self.sz)
        ]
        return {"tab": tab, "cur": self.start}

    def ref_call(self, state, reps: int) -> int:
        tab = state["tab"]
        mask = self.mask
        v = state["cur"]
        t = 0
        for _outer in range(self.mult):
            for r in range(reps):
                v = tab[(v + r) & mask]
                t = (t + v) & _KERN_MASK
                v = tab[(v ^ self.xc) & mask]
                t = (t + v) & _KERN_MASK
        state["cur"] = v
        return t


class AliasRecipe(Recipe):
    role = "alias"
    dominant = "p"

    def __init__(self, index, rng, ws, depth):
        super().__init__(index, rng, ws, depth)
        self.sz = _pow2_choice(rng, ws)
        self.mask = self.sz - 1
        self.c_store = rng.choice((5, 7, 11, 13))
        self.c_src = rng.choice((3, 5, 9))
        self.c_load = rng.choice((3, 7, 11))
        self.off = rng.randrange(0, self.sz)
        self.mul = rng.randrange(3, 63, 2)
        self.add = rng.randrange(0, 512)

    def decls_c(self) -> str:
        return f"int buf_{self.tag}[{self.sz}];"

    def init_c(self) -> str:
        return (
            f"void init_{self.tag}() {{\n"
            f"    int i;\n"
            f"    for (i = 0; i < {self.sz}; i++) {{\n"
            f"        buf_{self.tag}[i] = (i * {self.mul} + {self.add})"
            f" & 1023;\n"
            f"    }}\n"
            f"}}"
        )

    def kernel_c(self) -> str:
        buf = f"buf_{self.tag}"
        m = self.mask
        return self._wrap_kernel(
            [],
            [
                f"{buf}[(r * {self.c_store} + 3) & {m}] = "
                f"({buf}[(r * {self.c_src}) & {m}] + r) & {_KERN_MASK};",
                f"t = (t + {buf}[(r * {self.c_load} + {self.off}) & {m}])"
                f" & {_KERN_MASK};",
            ],
        )

    def per_unit_loads(self) -> int:
        return self.mult * 2

    def ref_make_state(self):
        return [(i * self.mul + self.add) & 1023 for i in range(self.sz)]

    def ref_call(self, buf, reps: int) -> int:
        m = self.mask
        t = 0
        for _outer in range(self.mult):
            for r in range(reps):
                buf[(r * self.c_store + 3) & m] = (
                    buf[(r * self.c_src) & m] + r
                ) & _KERN_MASK
                t = (t + buf[(r * self.c_load + self.off) & m]) & _KERN_MASK
        return t


#: Construction order of the recipe set (also the planner weight order).
RECIPE_CLASSES = (
    StridedRecipe,
    ChaseRecipe,
    IrregularRecipe,
    AliasRecipe,
)


def make_recipes(rng: random.Random, ws: str, depth: int) -> List[Recipe]:
    """The full recipe set for one generated program, in fixed order."""
    return [
        cls(index, rng, ws, depth)
        for index, cls in enumerate(RECIPE_CLASSES)
    ]


def build_source(recipes: List[Recipe], weights: Dict[str, int]) -> str:
    """Assemble the full mini-C program template (``__SCALE__`` intact).

    Every recipe's globals/init/kernel are always emitted; a recipe with
    weight 0 simply is not called from the main loop, which keeps the
    classification of the *other* kernels stable while the planner moves
    weights around (each kernel lives in its own function, so the
    classifier never mixes them).
    """
    parts: List[str] = []
    for recipe in recipes:
        parts.append(recipe.decls_c())
    for recipe in recipes:
        parts.append(recipe.init_c())
    for recipe in recipes:
        parts.append(recipe.kernel_c())

    main: List[str] = ["int main() {", "    int rep;"]
    for i in range(len(recipes)):
        main.append(f"    int acc{i} = 0;")
    main.append("    int total = 0;")
    for recipe in recipes:
        main.append(f"    init_{recipe.tag}();")
    main.append("    for (rep = 0; rep < __SCALE__; rep++) {")
    for i, recipe in enumerate(recipes):
        weight = weights.get(recipe.role, 0)
        if weight > 0:
            main.append(
                f"        acc{i} = (acc{i} + kern_{recipe.tag}({weight}))"
                f" & {_ACC_MASK};"
            )
    main.append("    }")
    for i in range(len(recipes)):
        main.append(f"    print_int(acc{i});")
    accs = " + ".join(f"acc{i}" for i in range(len(recipes)))
    main.append(f"    total = ({accs}) & {_ACC_MASK};")
    main.append("    print_int(total);")
    main.append("    return 0;")
    main.append("}")
    parts.append("\n".join(main))
    return "\n\n".join(parts) + "\n"


def reference_output(
    recipes: List[Recipe], weights: Dict[str, int], scale: int
) -> List[int]:
    """Pure-Python expected OUT stream of the assembled program."""
    states = [recipe.ref_make_state() for recipe in recipes]
    accs = [0] * len(recipes)
    for _rep in range(scale):
        for i, recipe in enumerate(recipes):
            weight = weights.get(recipe.role, 0)
            if weight > 0:
                accs[i] = (
                    accs[i] + recipe.ref_call(states[i], weight)
                ) & _ACC_MASK
    total = sum(accs) & _ACC_MASK
    return accs + [total]
