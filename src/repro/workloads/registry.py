"""Workload registry: name → source, scale, and reference output."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional


@dataclass(frozen=True)
class Workload:
    """One benchmark program.

    ``source_template`` may contain the token ``__SCALE__``, replaced by
    the integer scale factor; ``reference`` computes the expected OUT
    stream for a given scale in pure Python.
    """

    name: str
    suite: str  # "spec" | "mediabench"
    description: str
    source_template: str
    reference: Callable[[int], List[int]]
    default_scale: int = 1

    def source(self, scale: Optional[int] = None) -> str:
        n = self.default_scale if scale is None else scale
        return self.source_template.replace("__SCALE__", str(n))

    def expected_output(self, scale: Optional[int] = None) -> List[int]:
        n = self.default_scale if scale is None else scale
        return self.reference(n)


REGISTRY: Dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    if workload.name in REGISTRY:
        raise ValueError(f"duplicate workload {workload.name}")
    REGISTRY[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    _ensure_loaded()
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(REGISTRY)}"
        ) from None


def workload_names(suite: Optional[str] = None) -> List[str]:
    _ensure_loaded()
    return sorted(
        name
        for name, w in REGISTRY.items()
        if suite is None or w.suite == suite
    )


def spec_workloads() -> List[Workload]:
    _ensure_loaded()
    return [REGISTRY[name] for name in workload_names("spec")]


def mediabench_workloads() -> List[Workload]:
    _ensure_loaded()
    return [REGISTRY[name] for name in workload_names("mediabench")]


_loaded = False


def _ensure_loaded() -> None:
    global _loaded
    if not _loaded:
        _loaded = True
        from repro.workloads import mediabench, spec  # noqa: F401
