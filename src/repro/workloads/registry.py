"""Workload registry: name → source, scale, and reference output."""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional


@dataclass(frozen=True)
class Workload:
    """One benchmark program.

    ``source_template`` may contain the token ``__SCALE__``, replaced by
    the integer scale factor; ``reference`` computes the expected OUT
    stream for a given scale in pure Python.
    """

    name: str
    suite: str  # "spec" | "mediabench" | "gen"
    description: str
    source_template: str
    reference: Callable[[int], List[int]]
    default_scale: int = 1

    def _check_scale(self, n: int) -> int:
        if n <= 0:
            raise ValueError(
                f"workload {self.name!r} scale must be a positive "
                f"integer, got {n!r}"
            )
        return n

    def source(self, scale: Optional[int] = None) -> str:
        n = self._check_scale(
            self.default_scale if scale is None else scale
        )
        return self.source_template.replace("__SCALE__", str(n))

    def expected_output(self, scale: Optional[int] = None) -> List[int]:
        n = self._check_scale(
            self.default_scale if scale is None else scale
        )
        return self.reference(n)


REGISTRY: Dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    if workload.name in REGISTRY:
        raise ValueError(f"duplicate workload {workload.name}")
    REGISTRY[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    _ensure_loaded()
    try:
        return REGISTRY[name]
    except KeyError:
        pass
    if name.startswith("gen:"):
        # Generated workloads materialize lazily and deterministically
        # from their name (fingerprint + seed); a malformed name raises
        # ValueError with the grammar.
        from repro.workloads.gen import materialize

        return materialize(name)
    suggestion = ""
    close = difflib.get_close_matches(name, sorted(REGISTRY), n=1)
    if close:
        suggestion = f"; did you mean {close[0]!r}?"
    raise KeyError(
        f"unknown workload {name!r}{suggestion} "
        f"(known: {sorted(REGISTRY)}; generated workloads are named "
        "'gen:<fingerprint>:<seed>')"
    ) from None


def workload_names(suite: Optional[str] = None) -> List[str]:
    _ensure_loaded()
    return sorted(
        name
        for name, w in REGISTRY.items()
        if suite is None or w.suite == suite
    )


def spec_workloads() -> List[Workload]:
    _ensure_loaded()
    return [REGISTRY[name] for name in workload_names("spec")]


def mediabench_workloads() -> List[Workload]:
    _ensure_loaded()
    return [REGISTRY[name] for name in workload_names("mediabench")]


_loaded = False


def _ensure_loaded() -> None:
    global _loaded
    if not _loaded:
        _loaded = True
        from repro.workloads import mediabench, spec  # noqa: F401
