"""Common exception hierarchy for the reproduction.

Every failure the harness knows how to degrade gracefully derives from
:class:`ReproError`, which carries structured context (workload name,
offending optimization pass, program counter, ...) so that a failure
deep in the compile→emulate→simulate pipeline surfaces with enough
information to be actionable instead of as a bare message.

The hierarchy::

    ReproError
    ├── EmulationError          illegal execution in the functional emulator
    │   └── StepLimitExceeded   emulator hit its dynamic step budget
    ├── SimulationHang          timing simulator stopped making progress
    ├── IRVerificationError     structural IR invariant violated after a pass
    ├── OutputMismatchError     emulated output != pure-Python reference
    └── InjectedFault           deliberately raised by the FaultInjector

:class:`~repro.sim.executor.EmulationError` is re-exported from its
historical home in ``repro.sim.executor`` so existing imports keep
working.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class ReproError(Exception):
    """Base class for all reproduction failures.

    Keyword arguments become structured context rendered into the
    message, e.g. ``ReproError("boom", workload="132.ijpeg", pc=17)``
    stringifies as ``boom [pc=17, workload=132.ijpeg]``.
    """

    def __init__(self, message: str = "", **context: Any):
        super().__init__(message)
        self.message = message
        self.context: Dict[str, Any] = {
            key: value for key, value in context.items() if value is not None
        }

    def add_context(self, **context: Any) -> "ReproError":
        """Attach more context in place (later callers know more)."""
        for key, value in context.items():
            if value is not None and key not in self.context:
                self.context[key] = value
        return self

    @property
    def workload(self) -> Optional[str]:
        return self.context.get("workload")

    @property
    def pass_name(self) -> Optional[str]:
        return self.context.get("pass_name")

    @property
    def pc(self) -> Optional[int]:
        return self.context.get("pc")

    def __str__(self) -> str:
        if not self.context:
            return self.message
        rendered = ", ".join(
            f"{key}={value}" for key, value in sorted(self.context.items())
        )
        return f"{self.message} [{rendered}]"


class EmulationError(ReproError):
    """Raised on illegal execution (bad register, div-by-zero, runaway)."""


class StepLimitExceeded(EmulationError):
    """The functional emulator hit its dynamic step budget.

    Carries the budget, the last program counter (flat instruction
    index), and the number of steps actually executed, so callers can
    distinguish a genuinely runaway program from a budget that is simply
    too small for the workload scale.
    """

    def __init__(self, limit: int, last_pc: int, steps: int, **context: Any):
        super().__init__(
            f"step limit exceeded ({limit})",
            pc=last_pc,
            steps=steps,
            **context,
        )
        self.limit = limit
        self.last_pc = last_pc
        self.steps = steps


class SimulationHang(ReproError):
    """The timing simulator stopped retiring instructions.

    ``dump`` is a pipeline-state snapshot (cycle, instruction index,
    uid, opcode, pending stores, ...) taken at detection time.
    """

    def __init__(self, message: str, dump: Optional[Dict[str, Any]] = None,
                 **context: Any):
        super().__init__(message, **context)
        self.dump: Dict[str, Any] = dump or {}

    def __str__(self) -> str:
        base = super().__str__()
        if not self.dump:
            return base
        state = ", ".join(
            f"{key}={value}" for key, value in sorted(self.dump.items())
        )
        return f"{base} | pipeline state: {state}"


class IRVerificationError(ReproError):
    """A structural IR invariant does not hold.

    Raised by :mod:`repro.compiler.verify`; when the driver runs the
    verifier between optimization passes, ``pass_name`` names the pass
    whose output first violated the invariant.
    """

    def __init__(self, message: str, *, func: Optional[str] = None,
                 pass_name: Optional[str] = None, **context: Any):
        super().__init__(message, func=func, pass_name=pass_name, **context)
        self.func = func

    @property
    def func_name(self) -> Optional[str]:
        return self.context.get("func")


class OutputMismatchError(ReproError):
    """Emulated output diverged from the pure-Python reference."""


class InjectedFault(ReproError):
    """Deliberate failure raised by the test-only fault injector."""
