"""Reproduction of "Compiler-Directed Early Load-Address Generation"
(Cheng, Connors, Hwu — MICRO 1998).

Subpackages:

* :mod:`repro.isa`       — the RISC instruction set with ld_n/ld_p/ld_e
* :mod:`repro.lang`      — mini-C frontend (IMPACT stand-in)
* :mod:`repro.compiler`  — optimizer, register allocator, Section 4
  load classification, Section 4.3 profile feedback
* :mod:`repro.sim`       — functional emulator + cycle-level timing model
  with both early-address-generation paths
* :mod:`repro.profiling` — per-load stride-predictability profiling
* :mod:`repro.workloads` — SPEC- and MediaBench-like benchmark programs
* :mod:`repro.harness`   — experiment drivers for the paper's tables
  and figures
"""

__version__ = "0.1.0"
