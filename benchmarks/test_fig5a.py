"""Figure 5a — prediction-table-only speedups (64/128/256 entries),
hardware-only allocation vs compiler-directed allocation."""

from benchmarks.conftest import emit
from repro.harness.experiments import fig5a
from repro.harness.reporting import format_table

HEADERS = {
    "benchmark": "Benchmark",
    "hw_4": "HW 4",
    "hw_16": "HW 16",
    "hw_64": "HW 64",
    "hw_128": "HW 128",
    "hw_256": "HW 256",
    "cc_4": "CC 4",
    "cc_16": "CC 16",
    "cc_64": "CC 64",
    "cc_128": "CC 128",
    "cc_256": "CC 256",
}


def test_fig5a(benchmark, ctx):
    rows = benchmark.pedantic(fig5a, args=(ctx,), rounds=1, iterations=1)
    emit(format_table(rows, headers=HEADERS,
                      title="Figure 5a — table-only speedup"))

    geo = rows[-1]
    assert geo["benchmark"] == "geomean"
    # Larger tables help (or at least never hurt) both schemes.
    assert geo["hw_256"] >= geo["hw_4"] - 0.01
    assert geo["cc_256"] >= geo["cc_4"] - 0.01
    # Early generation never slows the machine down materially.
    for row in rows:
        for key, value in row.items():
            if key != "benchmark":
                assert value > 0.9
    # The paper's contention claim, at our conflict-pressure scale: with
    # compiler support only the PD loads compete for entries, so the
    # smallest table loses less of its large-table speedup than the
    # hardware-only scheme does.
    cc_gap = geo["cc_256"] - geo["cc_4"]
    hw_gap = geo["hw_256"] - geo["hw_4"]
    assert cc_gap <= hw_gap + 0.01
