"""Figure 5c — the paper's headline comparison: best single-path
hardware vs dual-path hardware-only vs compiler-directed (with and
without address profiling)."""

from benchmarks.conftest import emit
from repro.harness.experiments import fig5c
from repro.harness.reporting import FIG5C_HEADERS, format_table


def test_fig5c(benchmark, ctx):
    rows = benchmark.pedantic(fig5c, args=(ctx,), rounds=1, iterations=1)
    emit(format_table(rows, headers=FIG5C_HEADERS,
                      title="Figure 5c — dual-path comparison"))

    geo = rows[-1]
    # The paper's central claims, as orderings:
    # 1. compiler-directed dual-path beats run-time (hardware) selection
    #    on the same 256-entry + 1-register hardware;
    assert geo["cc_dual"] >= geo["hw_dual"]
    # 2. address profiling adds on top of the heuristics;
    assert geo["cc_prof"] >= geo["cc_dual"]
    # 3. the dual-path compiler scheme at 1 cached register is
    #    competitive with the much larger single-path configurations;
    assert geo["cc_dual"] >= geo["hw_table"] - 0.02
    assert geo["cc_prof"] >= geo["hw_calc"] - 0.05
    # 4. everything yields a real speedup over the no-early-gen baseline.
    for key in ("hw_table", "hw_calc", "hw_dual", "cc_dual", "cc_prof"):
        assert geo[key] > 1.0
