"""Table 3 — profile-guided load classification (60% threshold)."""

from benchmarks.conftest import emit
from repro.harness.experiments import table2, table3
from repro.harness.reporting import TABLE3_HEADERS, format_table


def test_table3(benchmark, ctx):
    rows = benchmark.pedantic(table3, args=(ctx,), rounds=1, iterations=1)
    emit(format_table(rows, headers=TABLE3_HEADERS,
                      title="Table 3 — with address profiling"))

    base_rows = {r["benchmark"]: r for r in table2(ctx)}
    body = rows[:-1]
    assert len(body) == 12
    for row in body:
        base = base_rows[row["benchmark"]]
        # Profiling only flips NT -> PD: PD shares can only grow.
        assert row["static_pd"] >= base["static_pd"] - 1e-9
        assert row["dyn_pd"] >= base["dyn_pd"] - 1e-9
        assert row["speedup"] > 1.0

    # The paper's Table 3 signature: moving the predictable NT loads
    # into PD *drops* the residual NT prediction rate.
    avg_nt_before = sum(base_rows[r["benchmark"]]["rate_nt"] for r in body)
    avg_nt_after = sum(r["rate_nt"] for r in body)
    assert avg_nt_after <= avg_nt_before + 1e-6
