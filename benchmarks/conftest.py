"""Shared context for the paper-reproduction benchmarks.

Scale defaults to 0.25 of the workloads' full iteration counts so the
whole suite stays laptop-friendly; set ``REPRO_BENCH_SCALE=1.0`` to
regenerate EXPERIMENTS.md-grade numbers.
"""

import os

import pytest

from repro.harness.experiments import ExperimentContext

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))


@pytest.fixture(scope="session")
def ctx():
    return ExperimentContext(scale=SCALE)


def emit(text: str) -> None:
    """Print a result table under pytest's capture (shown with -s)."""
    print()
    print(text)
