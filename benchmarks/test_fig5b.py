"""Figure 5b — early-calculation-only speedups (4/8/16 cached registers,
hardware-only BRIC-style cache)."""

from benchmarks.conftest import emit
from repro.harness.experiments import fig5b
from repro.harness.reporting import format_table

HEADERS = {
    "benchmark": "Benchmark",
    "regs_4": "4 regs",
    "regs_8": "8 regs",
    "regs_16": "16 regs",
}


def test_fig5b(benchmark, ctx):
    rows = benchmark.pedantic(fig5b, args=(ctx,), rounds=1, iterations=1)
    emit(format_table(rows, headers=HEADERS,
                      title="Figure 5b — early-calculation-only speedup"))

    geo = rows[-1]
    # More cached registers help...
    assert geo["regs_8"] >= geo["regs_4"] - 0.01
    assert geo["regs_16"] >= geo["regs_8"] - 0.01
    # ...but the paper's saturation: the 8->16 step gains less than 4->8.
    gain_48 = geo["regs_8"] - geo["regs_4"]
    gain_816 = geo["regs_16"] - geo["regs_8"]
    assert gain_816 <= gain_48 + 0.01
