"""Ablations of the design choices DESIGN.md calls out.

These are not artifacts of the paper; they isolate the knobs the paper's
result depends on: the classical optimizations feeding classification,
the load latency being hidden, the dual-path combination, and the
profiling threshold.
"""

import math

from benchmarks.conftest import SCALE, emit
from repro.compiler.driver import compile_source
from repro.compiler.profile_feedback import profile_overrides
from repro.harness.reporting import format_table
from repro.sim.executor import Executor
from repro.sim.machine import BASELINE, EarlyGenConfig, MachineConfig, SelectionMode
from repro.sim.pipeline import TimingSimulator
from repro.workloads import get_workload

SUBSET = ["023.eqntott", "147.vortex", "134.perl", "072.sc"]

PROPOSED = EarlyGenConfig(256, 1, SelectionMode.COMPILER)


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _speedup(trace, machine, earlygen, overrides=None):
    base = TimingSimulator(trace, machine.with_earlygen(BASELINE)).run()
    stats = TimingSimulator(
        trace, machine.with_earlygen(earlygen), overrides
    ).run()
    return base.cycles / stats.cycles


def _compile_run(name, **compile_kwargs):
    workload = get_workload(name)
    scale = max(1, int(workload.default_scale * SCALE))
    result = compile_source(workload.source(scale), **compile_kwargs)
    trace = Executor(result.program).run().trace
    return result, trace


def test_ablation_optimization_prerequisites(benchmark):
    """Section 4: "Our heuristics are dependent on these optimizations".

    Compiling without the classical passes floods the program with
    stack-slot loads and misclassifies the hot indirections; the
    early-generation gain survives only partially.
    """

    def run():
        rows = []
        machine = MachineConfig()
        for name in SUBSET:
            row = {"benchmark": name}
            for label, level in (("opt2", 2), ("opt0", 0)):
                result, trace = _compile_run(name, opt_level=level)
                row[f"{label}_speedup"] = _speedup(
                    trace, machine, PROPOSED
                )
                counts = result.class_counts()
                row[f"{label}_loads"] = sum(counts.values())
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(rows, title="Ablation — classical opts off"))
    for row in rows:
        # naive code has far more static loads to get right
        assert row["opt0_loads"] > row["opt2_loads"]
        assert row["opt0_speedup"] > 0.95
        assert row["opt2_speedup"] > 1.0


def test_ablation_load_latency(benchmark):
    """The longer the load pipe, the more the scheme recovers."""

    def run():
        rows = []
        for name in SUBSET:
            _, trace = _compile_run(name)
            row = {"benchmark": name}
            for latency in (1, 2, 4):
                machine = MachineConfig(load_latency=latency)
                row[f"lat{latency}"] = _speedup(trace, machine, PROPOSED)
            rows.append(row)
        geo = {"benchmark": "geomean"}
        for latency in (1, 2, 4):
            geo[f"lat{latency}"] = _geomean(
                [r[f"lat{latency}"] for r in rows]
            )
        rows.append(geo)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(rows, title="Ablation — load latency sweep"))
    geo = rows[-1]
    assert geo["lat2"] >= geo["lat1"] - 0.01
    assert geo["lat4"] >= geo["lat2"] - 0.01


def test_ablation_single_vs_dual_path(benchmark):
    """The paper's core architectural claim: the dual-path combination
    beats either compiler-directed path alone on the same programs."""

    def run():
        machine = MachineConfig()
        rows = []
        for name in SUBSET:
            _, trace = _compile_run(name)
            rows.append(
                {
                    "benchmark": name,
                    "table_only": _speedup(
                        trace, machine,
                        EarlyGenConfig(256, 0, SelectionMode.COMPILER),
                    ),
                    "raddr_only": _speedup(
                        trace, machine,
                        EarlyGenConfig(0, 1, SelectionMode.COMPILER),
                    ),
                    "dual": _speedup(trace, machine, PROPOSED),
                }
            )
        geo = {
            "benchmark": "geomean",
            "table_only": _geomean([r["table_only"] for r in rows]),
            "raddr_only": _geomean([r["raddr_only"] for r in rows]),
            "dual": _geomean([r["dual"] for r in rows]),
        }
        rows.append(geo)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(rows, title="Ablation — single vs dual path"))
    geo = rows[-1]
    assert geo["dual"] >= geo["table_only"] - 0.005
    assert geo["dual"] >= geo["raddr_only"] - 0.005


def test_ablation_profile_threshold(benchmark):
    """Section 4.3's 60% threshold: lower thresholds flip more loads;
    the flipped set shrinks monotonically as the threshold rises."""

    def run():
        rows = []
        machine = MachineConfig()
        for name in SUBSET:
            result, trace = _compile_run(name)
            row = {"benchmark": name}
            for threshold in (0.3, 0.6, 0.9):
                overrides = profile_overrides(
                    result.program, trace, threshold
                )
                row[f"flips_{int(threshold * 100)}"] = len(overrides)
                row[f"spd_{int(threshold * 100)}"] = _speedup(
                    trace, machine, PROPOSED, overrides
                )
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(rows, title="Ablation — profiling threshold"))
    for row in rows:
        assert row["flips_30"] >= row["flips_60"] >= row["flips_90"]
        for threshold in (30, 60, 90):
            assert row[f"spd_{threshold}"] > 0.95


def test_ablation_1024_entry_hardware_table(benchmark):
    """The paper: "the 1024-entry hardware-only approach was required to
    consistently surpass the performance of the 256-entry
    compiler-directed approach"."""

    def run():
        machine = MachineConfig()
        rows = []
        for name in SUBSET:
            _, trace = _compile_run(name)
            rows.append(
                {
                    "benchmark": name,
                    "hw_256": _speedup(
                        trace, machine,
                        EarlyGenConfig(256, 0, SelectionMode.HARDWARE),
                    ),
                    "hw_1024": _speedup(
                        trace, machine,
                        EarlyGenConfig(1024, 0, SelectionMode.HARDWARE),
                    ),
                    "cc_256": _speedup(
                        trace, machine,
                        EarlyGenConfig(256, 0, SelectionMode.COMPILER),
                    ),
                }
            )
        geo = {
            "benchmark": "geomean",
            "hw_256": _geomean([r["hw_256"] for r in rows]),
            "hw_1024": _geomean([r["hw_1024"] for r in rows]),
            "cc_256": _geomean([r["cc_256"] for r in rows]),
        }
        rows.append(geo)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(rows, title="Ablation — 1024-entry hardware table"))
    geo = rows[-1]
    assert geo["hw_1024"] >= geo["hw_256"] - 0.005
    # at our (smaller) static footprints 256 entries already hold every
    # load, so the 1024-entry step is flat; the compiler-directed 256
    # stays within noise of both.
    assert geo["cc_256"] >= geo["hw_1024"] - 0.03


def test_ablation_confidence_counters_vs_compiler(benchmark):
    """Extension study: do Gonzalez-style confidence counters on a
    hardware-only table recover the compiler's selectivity?"""

    def run():
        machine = MachineConfig()
        rows = []
        for name in SUBSET:
            _, trace = _compile_run(name)
            rows.append(
                {
                    "benchmark": name,
                    "hw_plain": _speedup(
                        trace, machine,
                        EarlyGenConfig(64, 0, SelectionMode.HARDWARE),
                    ),
                    "hw_conf2": _speedup(
                        trace, machine,
                        EarlyGenConfig(
                            64, 0, SelectionMode.HARDWARE,
                            table_confidence_bits=2,
                        ),
                    ),
                    "cc_plain": _speedup(
                        trace, machine,
                        EarlyGenConfig(64, 0, SelectionMode.COMPILER),
                    ),
                }
            )
        geo = {
            "benchmark": "geomean",
            "hw_plain": _geomean([r["hw_plain"] for r in rows]),
            "hw_conf2": _geomean([r["hw_conf2"] for r in rows]),
            "cc_plain": _geomean([r["cc_plain"] for r in rows]),
        }
        rows.append(geo)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(rows, title="Ablation — confidence counters"))
    geo = rows[-1]
    # confidence filtering must not tank performance...
    assert geo["hw_conf2"] > geo["hw_plain"] - 0.03
    # ...and the compiler's static selectivity remains competitive with
    # the dynamic filter.
    assert geo["cc_plain"] > geo["hw_conf2"] - 0.05


def test_ablation_return_address_stack(benchmark):
    """Extension study: a RAS removes return mispredicts from the
    call-heavy interpreters, raising the baseline and trimming the
    relative early-generation gain."""

    def run():
        rows = []
        for name in SUBSET:
            _, trace = _compile_run(name)
            no_ras = MachineConfig()
            with_ras = MachineConfig(ras_entries=16)
            rows.append(
                {
                    "benchmark": name,
                    "speedup_noras": _speedup(trace, no_ras, PROPOSED),
                    "speedup_ras": _speedup(trace, with_ras, PROPOSED),
                    "base_cycles_saved": (
                        TimingSimulator(
                            trace, no_ras.with_earlygen(BASELINE)
                        ).run().cycles
                        - TimingSimulator(
                            trace, with_ras.with_earlygen(BASELINE)
                        ).run().cycles
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(rows, title="Ablation — return-address stack"))
    for row in rows:
        assert row["base_cycles_saved"] >= 0
        assert row["speedup_ras"] > 0.95
