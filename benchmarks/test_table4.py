"""Table 4 — MediaBench load mix, prediction rates, and speedup under
the proposed configuration (256-entry table + one R_addr)."""

from benchmarks.conftest import emit
from repro.harness.experiments import table2, table4
from repro.harness.reporting import TABLE4_HEADERS, format_table


def test_table4(benchmark, ctx):
    rows = benchmark.pedantic(table4, args=(ctx,), rounds=1, iterations=1)
    emit(format_table(rows, headers=TABLE4_HEADERS,
                      title="Table 4 — MediaBench suite"))

    body = rows[:-1]
    average = rows[-1]
    assert len(body) == 13
    for row in body:
        assert row["speedup"] > 0.99

    # The paper's embedded-suite signature: MediaBench is markedly more
    # PD-dominated than SPEC (79.3% vs 58.1% dynamic PD in the paper).
    spec_rows = table2(ctx)
    spec_dyn_pd = sum(r["dyn_pd"] for r in spec_rows) / len(spec_rows)
    assert average["dyn_pd"] > spec_dyn_pd
    # ...and its PD loads predict well.
    assert average["rate_pd"] > 60
