"""Table 2 — SPEC load-class mix and NT/PD prediction rates."""

from benchmarks.conftest import emit
from repro.harness.experiments import table2
from repro.harness.reporting import TABLE2_HEADERS, format_table


def test_table2(benchmark, ctx):
    rows = benchmark.pedantic(
        table2, args=(ctx,), rounds=1, iterations=1
    )
    emit(format_table(rows, headers=TABLE2_HEADERS,
                      title="Table 2 — SPEC suite"))

    assert len(rows) == 12
    avg_pd = sum(r["rate_pd"] for r in rows) / len(rows)
    avg_nt = sum(r["rate_nt"] for r in rows) / len(rows)
    # The paper's headline classification result: PD loads predict far
    # better than NT loads (93.0% vs 70.8% in the paper).
    assert avg_pd > 60
    assert avg_pd > avg_nt + 20
    # Every class is populated somewhere in the suite.
    assert any(r["dyn_ec"] > 30 for r in rows)  # li/vortex-style
    assert any(r["dyn_pd"] > 60 for r in rows)  # eqntott-style
