#!/usr/bin/env python3
"""Section 5.4: design-space exploration for an embedded core.

Embedded parts trade silicon for software: this example sweeps the
prediction-table size and the number of cached base registers on a
MediaBench-style codec kernel and prints speedup per configuration, the
kind of table an embedded-SoC architect would use to pick the smallest
adequate design.

Run:  python examples/embedded_design.py
"""

from repro.compiler.driver import compile_source
from repro.sim.executor import Executor
from repro.sim.machine import EarlyGenConfig, MachineConfig, SelectionMode
from repro.sim.pipeline import TimingSimulator
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("ghostscript")
    print(f"workload: {workload.name} — {workload.description}")
    scale = max(1, workload.default_scale // 3)
    result = compile_source(workload.source(scale))
    exec_result = Executor(result.program).run()
    assert exec_result.output == workload.expected_output(scale)
    trace = exec_result.trace
    print(f"dynamic instructions: {exec_result.steps}")
    print(f"static classes: {result.class_counts()}")
    print()

    base = TimingSimulator(
        trace, MachineConfig().with_earlygen(EarlyGenConfig(0, 0))
    ).run()

    print("compiler-directed dual-path speedup by hardware budget:")
    header = "  table \\ regs " + "".join(
        f"{r:>9d}" for r in (0, 1, 2)
    )
    print(header)
    for entries in (0, 16, 64, 256):
        row = f"  {entries:12d} "
        for regs in (0, 1, 2):
            if entries == 0 and regs == 0:
                row += f"{'1.000x':>9s}"
                continue
            config = EarlyGenConfig(
                entries, regs, SelectionMode.COMPILER
            )
            stats = TimingSimulator(
                trace, MachineConfig().with_earlygen(config)
            ).run()
            row += f"{base.cycles / stats.cycles:8.3f}x"
        print(row)
    print()
    print("the paper's point for embedded parts: one addressing register")
    print("plus a small compiler-managed table captures most of the gain")
    print("of much larger hardware-only structures.")


if __name__ == "__main__":
    main()
