#!/usr/bin/env python3
"""Figure 1, live: hand-written assembly through the timeline debugger.

The paper's Figure 1 shows four pipeline scenarios; this example
assembles small kernels for two of them and renders per-instruction
issue timelines so the load-use stall — and its disappearance under
early generation — is directly visible.

Run:  python examples/assembly_debug.py
"""

from repro.isa import parse_asm
from repro.sim.executor import execute
from repro.sim.machine import EarlyGenConfig, MachineConfig, SelectionMode
from repro.sim.pipeline import TimingSimulator
from repro.sim.timeline import render_timeline

# Figure 1c: a strided load, immediately used (load-use hazard).
STRIDED = """
.data arr 256
main:
    lea r4, arr
    mov r6, 0
loop:
    ld_p r7, r4(0)       ; address = previous + 4: predictable
    add r5, r5, r7       ; immediate use -> stalls without early gen
    add r4, r4, 4
    add r6, r6, 1
    blt r6, 12, loop
    halt
"""

# Figure 1d: pointer chasing; r4's next value comes from memory.
CHASE = """
.data cells 96
main:
    lea r4, cells
    mov r6, 0
setup:                   ; build a chain: cells[i] -> cells[i+1]
    add r7, r4, 8
    st r7, r4(0)
    mov r4, r7
    add r6, r6, 1
    blt r6, 10, setup
    st r0, r4(0)         ; terminate
    lea r4, cells
walk:
    ld_e r5, r4(4)       ; payload off the same base: zero-cycle target
    add r8, r8, r5
    ld_e r4, r4(0)       ; the chase load itself
    bne r4, 0, walk
    halt
"""


def show(title, source, earlygen, start, count):
    program = parse_asm(source)
    trace = execute(program).trace
    machine = MachineConfig().with_earlygen(earlygen)
    stats = TimingSimulator(trace, machine, collect_timeline=True).run()
    print(f"--- {title}: {stats.cycles} cycles, ipc {stats.ipc:.2f} ---")
    print(render_timeline(trace, stats, start=start, count=count))
    print()


def main() -> None:
    none = EarlyGenConfig(0, 0)
    table = EarlyGenConfig(64, 0, SelectionMode.COMPILER)
    raddr = EarlyGenConfig(0, 1, SelectionMode.COMPILER)

    print("Figure 1a/1c — strided load with immediate use")
    print("watch the +d column: the dependent add trails the load by the")
    print("full 2-cycle latency at baseline, by less once ld_p hits.\n")
    show("baseline", STRIDED, none, start=12, count=10)
    show("with ld_p (256-entry table)", STRIDED, table, start=12, count=10)

    print("Figure 1d — pointer chasing")
    print("the payload load (r4+4) forwards at zero cycles through")
    print("R_addr; the chase load itself cannot (its base was just")
    print("loaded), exactly the paper's discussion.\n")
    show("baseline", CHASE, none, start=58, count=12)
    show("with ld_e (one R_addr)", CHASE, raddr, start=58, count=12)


if __name__ == "__main__":
    main()
