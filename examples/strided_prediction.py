#!/usr/bin/env python3
"""The Figure 3 address-table state machine, step by step, plus a
table-size sweep on a strided workload (the Figure 5a experiment in
miniature).

Run:  python examples/strided_prediction.py
"""

from repro.compiler.driver import compile_source
from repro.sim.executor import Executor
from repro.sim.machine import EarlyGenConfig, SelectionMode
from repro.sim.pipeline import speedup
from repro.sim.stride_table import FUNCTIONING, TableEntry

SOURCE = """
int a[512]; int b[512]; int c[512]; int d[512];
struct link { int v; struct link *next; };
struct link *ring;

int main() {
    int i; int r; int s = 0;
    for (i = 0; i < 512; i++) { a[i] = i; b[i] = 2 * i; }
    for (i = 0; i < 24; i++) {
        struct link *n = (struct link *) malloc(sizeof(struct link));
        n->v = i;
        n->next = ring;
        ring = n;
    }
    for (r = 0; r < 8; r++) {
        struct link *p = ring;
        for (i = 0; i < 512; i++) {
            c[i] = a[i] + b[i];
            d[i] = a[i] - b[i];
            s += c[i] ^ d[i];
            /* pointer chasing interleaved with the streams: in
               hardware-only mode these loads pollute the table */
            if (p) { s += p->v; p = p->next; }
        }
    }
    print_int(s & 16777215);
    return 0;
}
"""


def walk_state_machine() -> None:
    print("Figure 3 state machine on the address stream "
          "100, 104, 108, 112, 200, 204, 208:")
    entry = TableEntry(tag=0, ca=100)
    print(f"  allocate(100)    -> PA={entry.pa} ST={entry.st} "
          f"STC={entry.stc} (functioning)")
    for ca in (104, 108, 112, 200, 204, 208):
        predicted = entry.predict()
        verdict = "hit " if predicted == ca else "miss"
        entry.update(ca)
        state = "functioning" if entry.state == FUNCTIONING else "learning"
        shown = predicted if predicted is not None else "--"
        print(f"  access {ca}: predicted {str(shown):>6s} [{verdict}]  "
              f"-> PA={entry.pa} ST={entry.st} STC={entry.stc} ({state})")
    print()


def sweep_table_sizes() -> None:
    result = compile_source(SOURCE)
    trace = Executor(result.program).run().trace
    print("table-size sweep on a 4-stream strided kernel "
          "(compiler vs hardware allocation):")
    print(f"  {'entries':>8s} {'hw-only':>9s} {'compiler':>9s}")
    for entries in (4, 8, 32, 128):
        hw, _, _ = speedup(
            trace, EarlyGenConfig(entries, 0, SelectionMode.HARDWARE)
        )
        cc, _, _ = speedup(
            trace, EarlyGenConfig(entries, 0, SelectionMode.COMPILER)
        )
        print(f"  {entries:8d} {hw:8.3f}x {cc:8.3f}x")
    print()
    print("with compiler support only the ld_p loads compete for table")
    print("entries, so the smallest tables degrade more gracefully; once")
    print("the table has slack, hardware-only allocation catches up by")
    print("also predicting loads outside the PD class.")


def main() -> None:
    walk_state_machine()
    sweep_table_sizes()


if __name__ == "__main__":
    main()
