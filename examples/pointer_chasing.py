#!/usr/bin/env python3
"""The paper's Figure 1d / Figure 4d scenario: pointer-chasing loops.

Stride-based prediction cannot help loads whose base register is filled
from memory each iteration; the early-calculation path through R_addr
can.  This example builds a linked-list workload, then compares:

* the baseline machine (no early generation),
* table-based prediction alone (ld_p semantics for every load),
* the compiler-directed dual-path scheme (the paper's proposal).

Run:  python examples/pointer_chasing.py
"""

from repro.compiler.driver import compile_source
from repro.sim.executor import Executor
from repro.sim.machine import EarlyGenConfig, MachineConfig, SelectionMode
from repro.sim.pipeline import TimingSimulator

SOURCE = """
struct order { int qty; int price; int flags; struct order *next; };
struct order *book;

int main() {
    int i; int revenue = 0; int r;
    for (i = 0; i < 400; i++) {
        struct order *o = (struct order *) malloc(sizeof(struct order));
        o->qty = 1 + (i & 7);
        o->price = 10 + (i & 31);
        o->flags = i & 1;
        o->next = book;
        book = o;
    }
    for (r = 0; r < 12; r++) {
        struct order *p = book;
        while (p) {
            if (p->flags) { revenue += p->qty * p->price; }
            else { revenue += p->price; }
            p = p->next;
        }
    }
    print_int(revenue);
    return 0;
}
"""


def simulate(trace, earlygen):
    machine = MachineConfig().with_earlygen(earlygen)
    return TimingSimulator(trace, machine).run()


def main() -> None:
    result = compile_source(SOURCE)
    listing = result.program.functions["main"].dump()
    ld_e = listing.count("ld_e")
    ld_p = listing.count("ld_p")
    ld_n = listing.count("ld_n")
    print(f"compiler classification: {ld_e} ld_e, {ld_p} ld_p, {ld_n} ld_n")
    print("(the p->qty / p->price / p->flags / p->next group wins R_addr)")
    print()

    trace = Executor(result.program).run().trace
    base = simulate(trace, EarlyGenConfig(0, 0))
    table_only = simulate(
        trace, EarlyGenConfig(1024, 0, SelectionMode.HARDWARE)
    )
    dual = simulate(
        trace,
        EarlyGenConfig(256, 1, SelectionMode.COMPILER),
    )

    print(f"{'configuration':38s} {'cycles':>9s} {'speedup':>8s}")
    print("-" * 58)
    for name, stats in (
        ("baseline (no early generation)", base),
        ("1024-entry prediction table alone", table_only),
        ("compiler dual-path (256 + 1 R_addr)", dual),
    ):
        print(
            f"{name:38s} {stats.cycles:9d} "
            f"{base.cycles / stats.cycles:7.3f}x"
        )
    print()
    print("why the table cannot win here: the chase loads' addresses are")
    print("heap pointers loaded each iteration —")
    print(f"  table path forwarded  {table_only.pred_success:6d} of "
          f"{table_only.pred_loads} loads")
    print(f"  R_addr path forwarded {dual.calc_success:6d} of "
          f"{dual.calc_loads} loads (zero-cycle)")


if __name__ == "__main__":
    main()
