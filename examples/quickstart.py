#!/usr/bin/env python3
"""Quickstart: compile a mini-C program, inspect the load classes the
compiler chose, and measure the speedup from compiler-directed early
load-address generation.

Run:  python examples/quickstart.py
"""

from repro.compiler.driver import compile_source
from repro.sim.executor import Executor
from repro.sim.machine import EarlyGenConfig, SelectionMode
from repro.sim.pipeline import speedup

SOURCE = """
int table[256];
int keys[256];

struct node { int value; struct node *next; };
struct node *stack;

int main() {
    int i; int total = 0;
    struct node *p;

    /* strided initialisation: the compiler marks these loads ld_p */
    for (i = 0; i < 256; i++) {
        keys[i] = (i * 7) & 255;
        table[i] = i * 3;
    }

    /* indirection: table[keys[i]] uses a loaded index -> ld_n */
    for (i = 0; i < 256; i++) {
        total += table[keys[i]];
    }

    /* pointer chasing: the p-> loads share one base -> ld_e */
    for (i = 0; i < 64; i++) {
        struct node *n = (struct node *) malloc(sizeof(struct node));
        n->value = i;
        n->next = stack;
        stack = n;
    }
    p = stack;
    while (p) {
        total += p->value;
        p = p->next;
    }

    print_int(total);
    return 0;
}
"""


def main() -> None:
    # 1. Compile.  The driver runs the classical optimizations the paper
    #    depends on, then the Section 4 classification heuristics.
    result = compile_source(SOURCE)
    counts = result.class_counts()
    print("static load classes:", counts)
    print()
    print("annotated assembly (main):")
    print(result.program.functions["main"].dump())
    print()

    # 2. Emulate once; the trace drives every timing configuration.
    exec_result = Executor(result.program).run()
    print("program output:", exec_result.output)
    print("dynamic instructions:", exec_result.steps)
    print()

    # 3. Simulate the paper's proposed hardware: a 256-entry prediction
    #    table plus a single compiler-directed addressing register.
    proposed = EarlyGenConfig(
        table_entries=256, cached_regs=1, selection=SelectionMode.COMPILER
    )
    ratio, stats, base = speedup(exec_result.trace, proposed)
    print(f"baseline cycles:  {base.cycles}")
    print(f"proposed cycles:  {stats.cycles}")
    print(f"speedup:          {ratio:.3f}x")
    print()
    print("early-generation events:")
    print(f"  prediction path: {stats.pred_success}/{stats.pred_loads} "
          "loads forwarded at latency 1")
    print(f"  early-calc path: {stats.calc_success}/{stats.calc_loads} "
          "loads forwarded at latency 0")


if __name__ == "__main__":
    main()
