#!/usr/bin/env python3
"""Section 4.3: address profiling as a classification refinement.

A sorted index array makes ``table[idx[i]]`` stride-predictable, but the
static heuristics must classify it ld_n (its index is loaded, and the
addressing mode is register+register).  Profiling measures the actual
prediction rate per static load and flips qualifying ld_n loads to ld_p
— and nothing else, exactly as in the paper.

Run:  python examples/profile_guided.py
"""

from repro.compiler.driver import compile_source
from repro.compiler.profile_feedback import profile_overrides
from repro.isa.opcodes import LoadSpec
from repro.profiling.address_profile import profile_trace
from repro.sim.executor import Executor
from repro.sim.machine import EarlyGenConfig, SelectionMode
from repro.sim.pipeline import TimingSimulator

SOURCE = """
int idx[512];
int table[64];

void sort_idx(int n) {
    int i; int j;
    for (i = 1; i < n; i++) {
        int key = idx[i];
        j = i - 1;
        while (j >= 0 && idx[j] > key) {
            idx[j + 1] = idx[j];
            j--;
        }
        idx[j + 1] = key;
    }
}

int seed = 99;
int main() {
    int i; int s = 0; int r;
    for (i = 0; i < 512; i++) {
        seed = seed * 1103515245 + 12345;
        idx[i] = (seed >> 16) & 63;
    }
    for (i = 0; i < 64; i++) { table[i] = i * 5; }
    sort_idx(512);
    for (r = 0; r < 4; r++) {
        for (i = 0; i < 512; i++) {
            s += table[idx[i]];    /* ld_n statically, strided in truth */
        }
    }
    print_int(s & 16777215);
    return 0;
}
"""


def main() -> None:
    result = compile_source(SOURCE)
    program = result.program
    print("static classes from the heuristics:", result.class_counts())

    trace = Executor(program).run().trace
    profile = profile_trace(program, trace)

    print("\nper-load profile (dynamic count, prediction rate, class):")
    for inst in program.static_loads():
        count = profile.dynamic_count(inst.uid)
        if count < 100:
            continue
        print(f"  uid {inst.uid:4d} {inst.mnemonic():5s} "
              f"executed {count:6d}x  rate {profile.rate(inst.uid):5.1%}")

    overrides = profile_overrides(program, trace)
    flipped = [uid for uid, spec in overrides.items() if spec is LoadSpec.P]
    print(f"\nprofiling flips {len(flipped)} ld_n load(s) to ld_p "
          "(threshold 60%)")

    machine_cfg = EarlyGenConfig(256, 1, SelectionMode.COMPILER)
    from repro.sim.machine import MachineConfig

    machine = MachineConfig().with_earlygen(machine_cfg)
    base = TimingSimulator(
        trace, MachineConfig().with_earlygen(EarlyGenConfig(0, 0))
    ).run()
    plain = TimingSimulator(trace, machine).run()
    guided = TimingSimulator(trace, machine, spec_override=overrides).run()

    print(f"\nbaseline cycles:             {base.cycles}")
    print(f"compiler heuristics:         {plain.cycles} "
          f"({base.cycles / plain.cycles:.3f}x)")
    print(f"heuristics + profiling:      {guided.cycles} "
          f"({base.cycles / guided.cycles:.3f}x)")


if __name__ == "__main__":
    main()
