"""The README's code snippet must keep working."""

from repro.compiler.driver import compile_source
from repro.sim.executor import Executor
from repro.sim.machine import EarlyGenConfig, SelectionMode
from repro.sim.pipeline import speedup


def test_readme_quickstart_snippet():
    result = compile_source(
        """
        int arr[256];
        int main() {
            int i; int s = 0;
            for (i = 0; i < 256; i++) { arr[i] = i; }
            for (i = 0; i < 256; i++) { s += arr[i]; }
            print_int(s);
            return 0;
        }
        """
    )
    counts = result.class_counts()
    assert counts == {"n": 0, "p": 1, "e": 0}

    run = Executor(result.program).run()
    assert run.output == [sum(range(256))]

    proposed = EarlyGenConfig(
        table_entries=256, cached_regs=1, selection=SelectionMode.COMPILER
    )
    ratio, stats, baseline = speedup(run.trace, proposed)
    assert ratio > 1.0
    assert stats.pred_success > 0


def test_examples_are_importable_scripts():
    """Every example file parses and has a main() entry point."""
    import ast as python_ast
    import pathlib

    examples = pathlib.Path(__file__).parent.parent / "examples"
    scripts = sorted(examples.glob("*.py"))
    assert len(scripts) >= 6
    for script in scripts:
        tree = python_ast.parse(script.read_text())
        names = {
            node.name
            for node in tree.body
            if isinstance(node, python_ast.FunctionDef)
        }
        assert "main" in names, script.name
