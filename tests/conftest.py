"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.compiler.driver import CompileResult, compile_source
from repro.sim.executor import ExecResult, Executor
from repro.sim.machine import EarlyGenConfig, MachineConfig, SelectionMode

try:
    from hypothesis import HealthCheck, settings

    # Deterministic, CI-friendly property testing: a fixed seed keeps
    # failures reproducible across runs, and a generous deadline stops
    # slow shared runners from flaking on per-example timing.
    settings.register_profile(
        "repro",
        derandomize=True,
        deadline=1000,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.load_profile("repro")
except ImportError:  # pragma: no cover - hypothesis ships with the image
    pass


def compile_c(source: str, **kwargs) -> CompileResult:
    """Compile mini-C source with the default (paper) options."""
    return compile_source(source, **kwargs)


def run_c(source: str, **kwargs) -> ExecResult:
    """Compile and emulate mini-C source; returns the ExecResult."""
    result = compile_source(source, **kwargs)
    return Executor(result.program).run()


def output_of(source: str, **kwargs) -> list:
    """The OUT stream produced by a mini-C program."""
    return run_c(source, **kwargs).output


def run_all_levels(source: str) -> list:
    """Run a program at opt levels 0/1/2; asserts identical output."""
    outputs = [output_of(source, opt_level=level) for level in (0, 1, 2)]
    assert outputs[0] == outputs[1] == outputs[2], (
        f"optimization changed behaviour: {outputs}"
    )
    return outputs[0]


@pytest.fixture
def machine() -> MachineConfig:
    return MachineConfig()


@pytest.fixture
def proposed() -> EarlyGenConfig:
    """The paper's proposed configuration."""
    return EarlyGenConfig(
        table_entries=256, cached_regs=1, selection=SelectionMode.COMPILER
    )
