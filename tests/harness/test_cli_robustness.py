"""CLI acceptance tests for the fault-isolated runner path.

These exercise the ISSUE's end-to-end scenario at a small scale: with
injected crashing and hanging workloads, the run completes every other
row, marks the victims ERROR/TIMEOUT, exits non-zero — and a second
invocation against the same checkpoint directory re-runs only the
previously failed workloads.
"""

import pytest

from repro.harness.main import main

MEDIA_ARGS = ["--scale", "0.05", "--suite", "media"]


def test_injected_crash_degrades_and_exits_nonzero(capsys):
    code = main(MEDIA_ARGS + ["--inject", "adpcm_decode=crash"])
    assert code == 1
    out = capsys.readouterr().out
    assert "ERROR" in out
    assert "Degraded workloads (1/13)" in out
    assert "InjectedFault" in out
    # Every other workload still produced a real row.
    assert "gsm_decode" in out
    assert "average" in out


def test_injected_hang_times_out(capsys):
    code = main(
        MEDIA_ARGS
        + ["--timeout", "3", "--inject", "adpcm_decode=hang"]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "TIMEOUT" in out
    assert "Degraded workloads (1/13)" in out


def test_checkpoint_resume_reruns_only_failures(tmp_path, capsys):
    ckpt = str(tmp_path)
    assert main(
        MEDIA_ARGS
        + ["--checkpoint-dir", ckpt, "--inject", "adpcm_decode=crash"]
    ) == 1
    capsys.readouterr()

    # Without the injected fault, the resume run recovers and exits 0.
    assert main(MEDIA_ARGS + ["--checkpoint-dir", ckpt]) == 0
    err = capsys.readouterr().err
    assert err.count("checkpointed") == 12
    assert "[1/13] adpcm_decode: OK" in err


def test_retries_recover_flaky_workload(capsys):
    code = main(
        MEDIA_ARGS
        + [
            "--retries", "2",
            "--backoff", "0",
            "--inject", "adpcm_decode=flaky:2",
        ]
    )
    assert code == 0
    assert "3 attempts" in capsys.readouterr().err


def test_corrupt_ir_is_pinned_on_the_pass(capsys):
    code = main(MEDIA_ARGS + ["--inject", "adpcm_decode=corrupt-ir"])
    assert code == 1
    out = capsys.readouterr().out
    assert "IRVerificationError" in out
    assert "constant_propagation" in out


def test_bad_inject_spec_is_a_usage_error():
    with pytest.raises(SystemExit):
        main(MEDIA_ARGS + ["--inject", "bogus"])
    with pytest.raises(SystemExit):
        main(MEDIA_ARGS + ["--inject", "adpcm_decode=explode"])
