"""Parallel suite execution must be indistinguishable from sequential.

``WorkloadRunner.run_suite(jobs=4)`` fans workload preparation, the
per-config timing replays, and row assembly across a process pool; these
tests hold it to the sequential contract: identical row fragments,
identical assembled tables, identical statuses/attempt counts for
degraded workloads under injected crash/hang/flaky faults, and identical
checkpoint payloads (modulo wall-clock ``elapsed``).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.harness.experiments import ExperimentContext
from repro.harness.faults import FaultInjector
from repro.harness.runner import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    TABLES,
    RunnerConfig,
    WorkloadRunner,
    assemble_table,
)
from repro.workloads import workload_names

#: A small mixed subset (both suites) keeps the test quick while still
#: exercising every table assembler.
NAMES = workload_names("spec")[:3] + workload_names("mediabench")[:2]
SCALE = 0.02


def _run_suite(tmp_path: Path, jobs: int, *, inject=None,
               config: RunnerConfig = None, checkpoint: bool = False):
    injector = FaultInjector.parse(inject) if inject else None
    ckpt_dir = tmp_path / f"ckpt-jobs{jobs}"
    ctx = ExperimentContext(
        scale=SCALE,
        checkpoint_dir=str(ckpt_dir) if checkpoint else None,
        fault_injector=injector,
    )
    runner = WorkloadRunner(
        ctx, config if config is not None else RunnerConfig(), jobs=jobs
    )
    outcomes = runner.run_suite(NAMES)
    checkpoints = {}
    if checkpoint:
        for path in sorted(ckpt_dir.glob("*.json")):
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
            payload.pop("elapsed", None)
            checkpoints[path.name] = payload
    return outcomes, checkpoints


def _comparable(outcomes):
    """Outcome fields that must match across schedulers (not elapsed)."""
    return [
        (o.name, o.suite, o.status, o.rows, o.error, o.error_type,
         o.attempts)
        for o in outcomes
    ]


def test_parallel_rows_and_tables_match_sequential(tmp_path):
    seq, _ = _run_suite(tmp_path, jobs=1)
    par, _ = _run_suite(tmp_path, jobs=4)
    assert _comparable(par) == _comparable(seq)
    assert all(o.status == STATUS_OK for o in par)
    for spec in TABLES:
        assert assemble_table(spec, par) == assemble_table(spec, seq)


def test_parallel_degraded_rows_and_checkpoints_match_sequential(tmp_path):
    # One deterministic crash (exhausts the retry budget), one
    # transient failure (succeeds on the second attempt), one hang
    # (degrades to TIMEOUT, never retried).
    inject = [
        f"{NAMES[0]}=crash",
        f"{NAMES[1]}=flaky:1",
        f"{NAMES[3]}=hang",
    ]
    config = RunnerConfig(timeout=10.0, retries=1, backoff=0.0)
    seq, seq_ckpt = _run_suite(
        tmp_path, jobs=1, inject=inject, config=config, checkpoint=True
    )
    par, par_ckpt = _run_suite(
        tmp_path, jobs=4, inject=inject, config=config, checkpoint=True
    )

    by_name = {o.name: o for o in par}
    assert by_name[NAMES[0]].status == STATUS_ERROR
    assert by_name[NAMES[0]].attempts == 2  # retries exhausted
    assert by_name[NAMES[1]].status == STATUS_OK
    assert by_name[NAMES[1]].attempts == 2  # transient, then recovered
    assert by_name[NAMES[3]].status == STATUS_TIMEOUT
    assert by_name[NAMES[3]].attempts == 1  # timeouts are not retried

    assert _comparable(par) == _comparable(seq)
    assert par_ckpt == seq_ckpt
    for spec in TABLES:
        assert assemble_table(spec, par) == assemble_table(spec, seq)


def test_parallel_resume_skips_checkpointed_workloads(tmp_path):
    config = RunnerConfig(timeout=20.0)
    inject = [f"{NAMES[0]}=crash"]
    first, _ = _run_suite(
        tmp_path, jobs=4, inject=inject, config=config, checkpoint=True
    )
    assert {o.name for o in first if o.status == STATUS_ERROR} == {NAMES[0]}

    # Re-running against the same checkpoint directory recomputes only
    # the failed workload; completed ones come back cached.
    ckpt_dir = tmp_path / "ckpt-jobs4"
    ctx = ExperimentContext(scale=SCALE, checkpoint_dir=str(ckpt_dir))
    runner = WorkloadRunner(ctx, config, jobs=4)
    second = runner.run_suite(NAMES)
    by_name = {o.name: o for o in second}
    assert by_name[NAMES[0]].status == STATUS_OK
    assert not by_name[NAMES[0]].cached
    for name in NAMES[1:]:
        assert by_name[name].cached
        assert by_name[name].status == STATUS_OK
