"""Zero-duration guards in the bench harness (regression tests).

``perf_counter`` differences legitimately reach 0.0 on coarse clocks or
trivially small workloads; every derived rate must degrade to 0.0
instead of raising ``ZeroDivisionError`` halfway through a snapshot.
"""

import time

from repro.harness.bench import (
    _rate,
    bench_workload,
    compare_snapshots,
    run_bench,
)


def test_rate_guards_zero_and_negative_denominators():
    assert _rate(5, 0, 2) == 0.0
    assert _rate(5, 0.0, 2) == 0.0
    assert _rate(5, -1.0, 2) == 0.0
    assert _rate(5, 2.0, 2) == 2.5
    assert _rate(1, 3.0, 2) == 0.33


def test_bench_workload_survives_frozen_clock(monkeypatch):
    """All stage durations 0.0 → rates 0.0, no ZeroDivisionError."""
    monkeypatch.setattr(time, "perf_counter", lambda: 42.0)
    entry = bench_workload("026.compress", 0.02)
    assert entry["sim_s"] == 0.0
    assert entry["precompute_s"] == 0.0
    assert entry["wall_s"] == 0.0
    assert entry["sims_per_sec"] == 0.0
    assert entry["sim_instructions_per_sec"] == 0.0
    assert entry["sim_runs"] > 0  # the sims themselves still ran


def test_run_bench_totals_survive_zero_sim_time(monkeypatch):
    from repro.harness import bench

    entry = {
        "suite": "spec", "wall_s": 0.0, "compile_s": 0.0,
        "emulate_s": 0.0, "profile_s": 0.0, "precompute_s": 0.0,
        "replay_kernel_s": 0.0,
        "sim_s": 0.0, "sim_runs": 3, "trace_instructions": 10,
        "sim_instructions": 30, "sims_per_sec": 0.0,
        "sim_instructions_per_sec": 0.0,
    }
    monkeypatch.setattr(bench, "workload_names", lambda suite: ["fake"])
    monkeypatch.setattr(
        bench, "bench_workload", lambda name, scale: dict(entry)
    )
    snapshot = bench.run_bench(1.0, ("spec",))
    totals = snapshot["totals"]
    assert totals["sim_s"] == 0.0
    assert totals["sims_per_sec"] == 0.0
    assert totals["sim_instructions_per_sec"] == 0.0


def test_compare_snapshots_survives_zero_wall():
    zeroed = {
        "scale": 1.0, "suites": ["spec"],
        "totals": {"wall_s": 0.0, "sim_instructions_per_sec": 0.0},
        "workloads": {"a": {"wall_s": 0.0}},
    }
    healthy = {
        "scale": 1.0, "suites": ["spec"],
        "totals": {"wall_s": 2.0, "sim_instructions_per_sec": 100.0},
        "workloads": {"a": {"wall_s": 2.0}},
    }
    comparison = compare_snapshots(zeroed, healthy)
    assert "wall_speedup" not in comparison
    assert comparison["workload_wall_speedups"] == {}
    comparison = compare_snapshots(healthy, zeroed)
    assert "sim_throughput_ratio" not in comparison
