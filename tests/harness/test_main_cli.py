"""CLI smoke tests for ``python -m repro.harness.main``."""

import pytest

from repro.harness.main import main


def test_cli_media_suite(capsys):
    assert main(["--scale", "0.05", "--suite", "media"]) == 0
    out = capsys.readouterr().out
    assert "Table 4" in out
    assert "adpcm_decode" in out
    assert "Table 2" not in out


def test_cli_spec_suite_subset(capsys):
    # spec suite includes all five SPEC artifacts
    assert main(["--scale", "0.03", "--suite", "spec"]) == 0
    out = capsys.readouterr().out
    for artifact in ("Table 2", "Figure 5a", "Figure 5b", "Figure 5c",
                     "Table 3"):
        assert artifact in out
    assert "Table 4" not in out


def test_cli_rejects_bad_suite():
    with pytest.raises(SystemExit):
        main(["--suite", "nope"])
