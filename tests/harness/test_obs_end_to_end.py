"""End-to-end observability: --trace-out through main/bench/obs_report.

One spec-suite run at a tiny scale produces JSONL trace files plus a
manifest; these tests assert the trace validates, that the per-stage
summary covers every pipeline layer (compiler passes, simulator
replays, harness tasks), and that ``obs_report``'s load-class table —
computed purely from ``profile.classes`` trace events — matches the
rows :func:`repro.harness.experiments.table2` computes directly.
"""

import json

import pytest

from repro import obs
from repro.harness import obs_report
from repro.harness.experiments import ExperimentContext, table2
from repro.harness.main import main
from repro.harness.obs_report import (
    class_rows,
    read_trace,
    sim_totals,
    stage_summary,
    validate,
    worker_summary,
)

SCALE = 0.02


@pytest.fixture(scope="module")
def trace_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("trace")
    code = main([
        "--scale", str(SCALE), "--suite", "spec",
        "--trace-out", str(out),
    ])
    assert code == 0
    # main() must uninstall its tracer even on in-process calls.
    assert obs.current() is obs.NULL_TRACER
    return out


def test_trace_validates(trace_dir):
    assert validate(trace_dir) == []


def test_manifest_contents(trace_dir):
    manifest = json.loads((trace_dir / "manifest.json").read_text())
    assert manifest["command"] == "repro.harness.main"
    assert manifest["scale"] == SCALE
    assert manifest["degraded"] == []
    assert manifest["trace_files"]
    names = {w["name"] for w in manifest["workloads"]}
    assert "022.li" in names
    for entry in manifest["workloads"]:
        assert entry["status"] == "ok"
        assert len(entry["artifact_key"]) == 32


def test_stage_summary_covers_every_layer(trace_dir):
    stages = {row["stage"] for row in stage_summary(read_trace(trace_dir))}
    # Harness, compiler, and simulator layers all appear in one trace.
    assert {"run", "workload", "prepare", "compile", "frontend",
            "regalloc", "emulate", "profile", "sim"} <= stages
    assert any(s.startswith("pass:") for s in stages)


def test_class_rows_match_table2(trace_dir):
    rows = {r["benchmark"]: r for r in class_rows(read_trace(trace_dir))}
    expected = table2(ExperimentContext(scale=SCALE))
    assert set(rows) == {r["benchmark"] for r in expected}
    for exp in expected:
        got = rows[exp["benchmark"]]
        for key, value in exp.items():
            if isinstance(value, float):
                assert got[key] == pytest.approx(value)
            else:
                assert got[key] == value


def test_sim_totals_has_baseline_and_configs(trace_dir):
    totals = {r["config"]: r for r in sim_totals(read_trace(trace_dir))}
    assert "baseline" in totals
    assert len(totals) > 1  # the early-gen sweep configs
    base = totals["baseline"]
    assert base["cycles"] > 0
    assert base["instructions"] > 0


def test_report_cli_renders_and_validates(trace_dir, capsys):
    assert obs_report.main([str(trace_dir), "--validate"]) == 0
    assert obs_report.main([str(trace_dir)]) == 0
    out = capsys.readouterr().out
    assert "Per-stage wall time" in out
    assert "Table 2 projection" in out
    assert "022.li" in out


def test_report_cli_flags_corruption(tmp_path, capsys):
    assert obs_report.main([str(tmp_path / "nope"), "--validate"]) == 2
    bad = tmp_path / "bad"
    bad.mkdir()
    (bad / "trace-1.jsonl").write_text(
        '{"schema":99,"kind":"mystery"}\nnot json\n', encoding="utf-8"
    )
    assert obs_report.main([str(bad), "--validate"]) == 1
    err = capsys.readouterr().err
    assert "missing manifest.json" in err
    assert "not valid JSON" in err
    assert "schema" in err


def test_parallel_run_tags_workers(tmp_path):
    out = tmp_path / "trace"
    code = main([
        "--scale", str(SCALE), "--suite", "media",
        "--jobs", "2", "--trace-out", str(out),
    ])
    assert code == 0
    assert validate(out) == []
    workers = {row["worker"] for row in worker_summary(read_trace(out))}
    assert "main" in workers
    assert any(w.startswith("w") and w != "main" for w in workers)
    # Pool workers wrote their own per-pid files.
    assert len(list(out.glob("*.jsonl"))) >= 2


def test_bench_trace_out(tmp_path, capsys, monkeypatch):
    from repro.harness import bench

    monkeypatch.setattr(
        bench, "workload_names", lambda suite: ["026.compress"]
    )
    out = tmp_path / "trace"
    snapshot_path = tmp_path / "snap.json"
    code = bench.main([
        "--scale", "0.02", "--suite", "media",
        "--output", str(snapshot_path), "--trace-out", str(out),
    ])
    assert code == 0
    assert obs.current() is obs.NULL_TRACER
    assert validate(out) == []
    manifest = json.loads((out / "manifest.json").read_text())
    assert manifest["command"] == "repro.harness.bench"
    assert [w["name"] for w in manifest["workloads"]] == ["026.compress"]
    stages = {row["stage"] for row in stage_summary(read_trace(out))}
    assert {"run", "bench:workload", "compile", "emulate",
            "profile", "sim"} <= stages
