"""Harness/CLI integration of generated workloads: ``--workloads``
selection and the synthetic-SPEC sweep tier."""

import pytest

from repro.harness.main import main, select_workloads
from repro.workloads.gen.__main__ import main as gen_main


def test_select_workloads_globs_and_exact_names():
    from repro.workloads import get_workload

    get_workload("gen:mixed:0")  # materialize so the glob can see it
    names = select_workloads(["gen:*"])
    assert "gen:n34p33e33:0" in names
    assert select_workloads(["026.compress", "026.compress"]) == \
        ["026.compress"]
    decode = select_workloads(["*decode*"])
    assert decode and all("decode" in n for n in decode)


def test_select_workloads_unmatched_pattern_fails_loudly():
    with pytest.raises(ValueError, match="matched no"):
        select_workloads(["zzz*"])
    with pytest.raises(ValueError, match="unknown workload"):
        select_workloads(["nonesuch"])


def test_cli_workloads_selection_runs_gen_table(capsys):
    assert main(
        ["--workloads", "gen:mixed:0,adpcm_decode", "--scale", "0.25"]
    ) == 0
    out = capsys.readouterr().out
    assert "Generated workloads" in out
    assert "gen:n34p33e33:0" in out
    assert "Table 4" in out  # mediabench table for adpcm_decode
    assert "Table 2" not in out  # no spec workload selected


def test_cli_workloads_bad_pattern_exits(capsys):
    with pytest.raises(SystemExit):
        main(["--workloads", "gen:zzz*"])


def test_sweep_cli_end_to_end_with_jobs_and_result_cache(
    tmp_path, capsys
):
    cache = tmp_path / "cache"
    md = tmp_path / "sweep.md"
    args = [
        "sweep", "--step", "50", "--scale", "0.25", "--jobs", "2",
        "--result-cache", str(cache), "--markdown-out", str(md),
    ]
    assert gen_main(args) == 0
    out = capsys.readouterr().out
    assert "Synthetic-SPEC sweep" in out
    assert "n100p0e0" in out and "geomean" in out
    text = md.read_text()
    assert text.startswith("### Synthetic-SPEC sweep")
    assert "| n0p0e100 |" in text

    # Second run is served from the result cache, rows identical.
    assert gen_main(args) == 0
    out2 = capsys.readouterr().out
    assert "result-cache" in out2 or md.read_text() == text


def test_gen_cli_emit_and_bad_name(capsys):
    assert gen_main(["emit", "gen:strided:0", "--ref"]) == 0
    out = capsys.readouterr().out
    assert out.strip().splitlines()  # the reference OUT stream
    assert gen_main(["emit", "gen:nope:0"]) == 2
    assert "fingerprint" in capsys.readouterr().err
