"""--result-cache: warm runs skip compile+simulate with identical tables."""

import pytest

from repro.harness.main import main
from repro.service.store import ResultStore

ARGS = ["--scale", "0.05", "--suite", "media"]


def _run(capsys, *extra):
    assert main(ARGS + list(extra)) == 0
    captured = capsys.readouterr()
    tables = "\n".join(
        line for line in captured.out.splitlines()
        if not line.startswith("total wall time:")
    )
    return tables, captured.err


@pytest.fixture
def cache_dir(tmp_path):
    return tmp_path / "cache"


def test_warm_run_is_identical_and_all_hits(capsys, cache_dir):
    cold_out, cold_err = _run(capsys, "--result-cache", str(cache_dir))
    store = ResultStore(cache_dir)
    n_entries = len(store.entries())
    assert n_entries > 0
    assert "result cache: 0 hits" in cold_err

    warm_out, warm_err = _run(capsys, "--result-cache", str(cache_dir))
    assert warm_out == cold_out  # byte-identical tables
    assert f"result cache: {n_entries} hits, 0 misses" in warm_err
    assert warm_err.count("(result-cache)") == n_entries


def test_warm_parallel_run_is_identical(capsys, cache_dir):
    cold_out, _ = _run(capsys, "--result-cache", str(cache_dir))
    warm_out, warm_err = _run(
        capsys, "--result-cache", str(cache_dir), "--jobs", "2"
    )
    assert warm_out == cold_out
    assert ", 0 misses" in warm_err


def test_key_is_sensitive_to_scale(capsys, cache_dir):
    _run(capsys, "--result-cache", str(cache_dir))
    _, err = _run(
        capsys, "--result-cache", str(cache_dir), "--scale", "0.06"
    )
    assert "result cache: 0 hits" in err  # different scale, different keys


def test_checkpoint_takes_precedence(capsys, cache_dir, tmp_path):
    """A checkpointed workload resumes from JSON, not the result store."""
    ckpt = tmp_path / "ckpt"
    _run(capsys, "--result-cache", str(cache_dir),
         "--checkpoint-dir", str(ckpt))
    _, err = _run(capsys, "--result-cache", str(cache_dir),
                  "--checkpoint-dir", str(ckpt))
    assert "(checkpointed)" in err
    assert "(result-cache)" not in err
