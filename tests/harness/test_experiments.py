"""Experiment-harness tests at tiny scales.

These check the *shape* invariants the paper's evaluation rests on; the
full-scale numbers live in benchmarks/ and EXPERIMENTS.md.
"""

import math

import pytest

from repro.harness.experiments import (
    ExperimentContext,
    _geomean,
    fig5a,
    fig5b,
    fig5c,
    table2,
    table3,
    table4,
)
from repro.harness.reporting import TABLE2_HEADERS, format_table

#: Small but non-trivial subsets keep this module quick.
SPEC_SUBSET = ["023.eqntott", "147.vortex", "134.perl"]
MEDIA_SUBSET = ["adpcm_decode", "gsm_encode"]


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(scale=0.12)


def test_context_caches_runs(ctx):
    first = ctx.run(SPEC_SUBSET[0])
    second = ctx.run(SPEC_SUBSET[0])
    assert first is second


def test_context_verifies_against_reference():
    bad = ExperimentContext(scale=0.12, verify=True)
    run = bad.run("023.eqntott")  # must not raise
    assert run.steps > 0


def test_table2_shape(ctx):
    rows = table2(ctx, SPEC_SUBSET)
    assert len(rows) == len(SPEC_SUBSET)
    for row in rows:
        assert row["static_nt"] + row["static_pd"] + row["static_ec"] == (
            pytest.approx(100.0)
        )
        assert row["dyn_nt"] + row["dyn_pd"] + row["dyn_ec"] == (
            pytest.approx(100.0)
        )
        assert 0 <= row["rate_nt"] <= 100
        assert 0 <= row["rate_pd"] <= 100
        assert row["dyn_loads"] > 0


def test_table2_pd_rate_exceeds_nt_rate_on_average(ctx):
    """The central classification claim: PD loads predict far better
    than NT loads."""
    rows = table2(ctx, SPEC_SUBSET)
    avg_pd = sum(r["rate_pd"] for r in rows) / len(rows)
    avg_nt = sum(r["rate_nt"] for r in rows) / len(rows)
    assert avg_pd > avg_nt


def test_fig5a_bigger_tables_never_hurt(ctx):
    rows = fig5a(ctx, SPEC_SUBSET, table_sizes=(64, 256))
    geo = rows[-1]
    assert geo["benchmark"] == "geomean"
    assert geo["hw_256"] >= geo["hw_64"] - 0.01
    assert geo["cc_256"] >= geo["cc_64"] - 0.01
    for row in rows:
        for key, value in row.items():
            if key != "benchmark":
                assert value > 0.85  # early generation never tanks


def test_fig5b_more_registers_never_hurt(ctx):
    rows = fig5b(ctx, SPEC_SUBSET, reg_counts=(4, 16))
    geo = rows[-1]
    assert geo["regs_16"] >= geo["regs_4"] - 0.01


def test_fig5c_compiler_beats_hardware_dual(ctx):
    rows = fig5c(ctx, SPEC_SUBSET)
    geo = rows[-1]
    assert geo["cc_dual"] >= geo["hw_dual"] - 0.005
    assert geo["cc_prof"] >= geo["cc_dual"] - 0.005
    for key in ("hw_table", "hw_calc", "hw_dual", "cc_dual", "cc_prof"):
        assert geo[key] >= 0.95


def test_table3_profile_changes_classes(ctx):
    t2 = table2(ctx, SPEC_SUBSET)
    t3 = table3(ctx, SPEC_SUBSET)
    by_name2 = {r["benchmark"]: r for r in t2}
    for row in t3[:-1]:
        base = by_name2[row["benchmark"]]
        # profiling can only grow the PD share
        assert row["static_pd"] >= base["static_pd"] - 1e-9
        assert row["dyn_pd"] >= base["dyn_pd"] - 1e-9
        assert row["speedup"] > 0.9


def test_table4_shape(ctx):
    rows = table4(ctx, MEDIA_SUBSET)
    assert rows[-1]["benchmark"] == "average"
    for row in rows[:-1]:
        assert row["speedup"] > 0.9
        assert row["dyn_pd"] >= 0


def test_format_table_renders(ctx):
    rows = table2(ctx, SPEC_SUBSET[:1])
    text = format_table(rows, headers=TABLE2_HEADERS, title="T")
    assert "Benchmark" in text
    assert SPEC_SUBSET[0] in text
    assert text.startswith("T\n")


def test_format_table_empty():
    assert format_table([]) == "(no rows)"


def test_geomean_positive_values():
    assert _geomean([2.0, 8.0]) == pytest.approx(4.0)
    assert _geomean([1.0]) == pytest.approx(1.0)


def test_geomean_empty_is_nan_with_warning():
    with pytest.warns(RuntimeWarning, match="empty sequence"):
        assert math.isnan(_geomean([]))


def test_geomean_non_positive_is_nan_with_warning():
    for bad in ([1.0, 0.0], [1.0, -2.0], [1.0, float("nan")]):
        with pytest.warns(RuntimeWarning, match="undefined"):
            assert math.isnan(_geomean(bad))


def test_corrupt_checkpoint_is_a_warned_miss(tmp_path):
    cp_ctx = ExperimentContext(scale=0.12, checkpoint_dir=tmp_path)
    cp_ctx.store_checkpoint("x", {"rows": [1]})
    assert cp_ctx.load_checkpoint("x")["rows"] == [1]
    # Truncate mid-write, as a crash would.
    path = cp_ctx.checkpoint_path("x")
    path.write_text(path.read_text()[:10], encoding="utf-8")
    with pytest.warns(RuntimeWarning, match="corrupt checkpoint"):
        assert cp_ctx.load_checkpoint("x") is None
    # A recompute can re-store over the corpse.
    cp_ctx.store_checkpoint("x", {"rows": [2]})
    assert cp_ctx.load_checkpoint("x")["rows"] == [2]


def test_missing_checkpoint_is_a_silent_miss(tmp_path, recwarn):
    cp_ctx = ExperimentContext(scale=0.12, checkpoint_dir=tmp_path)
    assert cp_ctx.load_checkpoint("never-stored") is None
    assert not [w for w in recwarn.list
                if issubclass(w.category, RuntimeWarning)]
