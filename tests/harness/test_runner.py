"""Fault-isolated runner: degradation, retries, timeout, resume."""

import json

import pytest

from repro.errors import InjectedFault
from repro.harness.experiments import CHECKPOINT_SCHEMA, ExperimentContext
from repro.harness.faults import FaultInjector
from repro.harness.runner import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    TABLES,
    RunnerConfig,
    WorkloadOutcome,
    WorkloadRunner,
    assemble_table,
    compute_rows,
)

SPEC = "023.eqntott"
MEDIA = "adpcm_decode"
SCALE = 0.05


def make_runner(tmp_path=None, injector=None, **cfg):
    ctx = ExperimentContext(
        scale=SCALE,
        checkpoint_dir=tmp_path,
        fault_injector=injector,
    )
    return WorkloadRunner(ctx, RunnerConfig(**cfg))


# -- FaultInjector ---------------------------------------------------------

def test_parse_rejects_malformed_entries():
    with pytest.raises(ValueError, match="WORKLOAD=MODE"):
        FaultInjector.parse(["no-equals-sign"])


def test_unknown_mode_rejected():
    with pytest.raises(ValueError, match="unknown fault mode"):
        FaultInjector.parse([f"{SPEC}=explode"])


def test_flaky_requires_positive_count():
    with pytest.raises(ValueError, match="N >= 1"):
        FaultInjector().add(SPEC, "flaky:0")


def test_crash_fires_every_attempt():
    injector = FaultInjector.parse([f"{SPEC}=crash"])
    for _ in range(3):
        with pytest.raises(InjectedFault, match="injected crash"):
            injector.fire(SPEC)
    injector.fire("other")  # unconfigured workloads are untouched


def test_flaky_succeeds_after_n_failures():
    injector = FaultInjector().add(SPEC, "flaky:2")
    for _ in range(2):
        with pytest.raises(InjectedFault):
            injector.fire(SPEC)
    injector.fire(SPEC)  # third attempt passes


# -- degradation and retries ----------------------------------------------

def test_successful_workload():
    outcome = make_runner().run_workload(MEDIA)
    assert outcome.status == STATUS_OK
    assert outcome.suite == "mediabench"
    assert outcome.attempts == 1
    assert not outcome.degraded
    assert outcome.rows["table4"]["benchmark"] == MEDIA
    assert outcome.rows["table4"]["speedup"] > 0


def test_spec_workload_produces_all_five_fragments():
    rows = compute_rows(ExperimentContext(scale=SCALE), SPEC)
    assert set(rows) == {"table2", "fig5a", "fig5b", "fig5c", "table3"}
    for row in rows.values():
        assert row["benchmark"] == SPEC


def test_crash_degrades_to_error_row():
    injector = FaultInjector().add(MEDIA, "crash")
    outcome = make_runner(injector=injector).run_workload(MEDIA)
    assert outcome.status == STATUS_ERROR
    assert outcome.degraded
    assert outcome.error_type == "InjectedFault"
    assert MEDIA in outcome.error  # workload context attached


def test_flaky_workload_recovers_with_retries():
    injector = FaultInjector().add(MEDIA, "flaky:2")
    runner = make_runner(injector=injector, retries=2, backoff=0.0)
    outcome = runner.run_workload(MEDIA)
    assert outcome.status == STATUS_OK
    assert outcome.attempts == 3


def test_retries_exhausted_degrades():
    injector = FaultInjector().add(MEDIA, "flaky:5")
    runner = make_runner(injector=injector, retries=1, backoff=0.0)
    outcome = runner.run_workload(MEDIA)
    assert outcome.status == STATUS_ERROR
    assert outcome.attempts == 2


def test_hang_degrades_to_timeout_without_retry():
    injector = FaultInjector().add(MEDIA, "hang")
    runner = make_runner(injector=injector, timeout=0.2, retries=3)
    outcome = runner.run_workload(MEDIA)
    assert outcome.status == STATUS_TIMEOUT
    assert outcome.attempts == 1  # timeouts are not retried
    assert injector.stop_event.is_set()  # abandoned worker was released


def test_corrupt_output_degrades_with_mismatch():
    injector = FaultInjector().add(MEDIA, "corrupt-output")
    outcome = make_runner(injector=injector).run_workload(MEDIA)
    assert outcome.status == STATUS_ERROR
    assert outcome.error_type == "OutputMismatchError"


def test_corrupt_ir_degrades_naming_the_pass():
    injector = FaultInjector().add(MEDIA, "corrupt-ir")
    outcome = make_runner(injector=injector).run_workload(MEDIA)
    assert outcome.status == STATUS_ERROR
    assert outcome.error_type == "IRVerificationError"
    assert "constant_propagation" in outcome.error


def test_bad_config_rejected():
    with pytest.raises(ValueError):
        RunnerConfig(timeout=-1)


# -- checkpoint/resume -----------------------------------------------------

def test_checkpoint_written_and_resumed(tmp_path):
    outcome = make_runner(tmp_path).run_workload(MEDIA)
    assert not outcome.cached
    path = tmp_path / f"{MEDIA}.json"
    assert path.exists()
    payload = json.loads(path.read_text())
    assert payload["schema"] == CHECKPOINT_SCHEMA
    assert payload["status"] == STATUS_OK

    # A fresh runner (fresh context) resumes from the file.
    resumed = make_runner(tmp_path).run_workload(MEDIA)
    assert resumed.cached
    assert resumed.rows == outcome.rows


def test_failed_workload_is_rerun_on_resume(tmp_path):
    injector = FaultInjector().add(MEDIA, "crash")
    first = make_runner(tmp_path, injector=injector).run_workload(MEDIA)
    assert first.status == STATUS_ERROR

    # Second run without the fault recomputes and overwrites.
    second = make_runner(tmp_path).run_workload(MEDIA)
    assert not second.cached
    assert second.status == STATUS_OK
    payload = json.loads((tmp_path / f"{MEDIA}.json").read_text())
    assert payload["status"] == STATUS_OK


def test_checkpoint_ignored_on_scale_change(tmp_path):
    make_runner(tmp_path).run_workload(MEDIA)
    ctx = ExperimentContext(scale=0.07, checkpoint_dir=tmp_path)
    outcome = WorkloadRunner(ctx).run_workload(MEDIA)
    assert not outcome.cached


def test_corrupt_checkpoint_ignored(tmp_path):
    (tmp_path / f"{MEDIA}.json").write_text("{not json")
    with pytest.warns(RuntimeWarning, match="corrupt checkpoint"):
        outcome = make_runner(tmp_path).run_workload(MEDIA)
    assert not outcome.cached
    assert outcome.status == STATUS_OK


def test_run_suite_isolates_failures(tmp_path):
    injector = FaultInjector().add(MEDIA, "crash")
    runner = make_runner(tmp_path, injector=injector)
    outcomes = runner.run_suite([MEDIA, "adpcm_encode"])
    assert [o.status for o in outcomes] == [STATUS_ERROR, STATUS_OK]


# -- table assembly --------------------------------------------------------

def media_spec():
    (spec,) = [t for t in TABLES if t.key == "table4"]
    return spec


def test_assemble_table_appends_degraded_and_summary():
    ok = WorkloadOutcome(
        "adpcm_encode", "mediabench", STATUS_OK,
        rows={"table4": {
            "benchmark": "adpcm_encode", "dyn_loads": 10, "static_nt": 1.0,
            "static_pd": 2.0, "static_ec": 3.0, "dyn_nt": 4.0,
            "dyn_pd": 5.0, "dyn_ec": 6.0, "rate_nt": 7.0, "rate_pd": 8.0,
            "speedup": 1.5,
        }},
    )
    bad = WorkloadOutcome(MEDIA, "mediabench", STATUS_TIMEOUT)
    rows = assemble_table(media_spec(), [ok, bad])
    assert [r["benchmark"] for r in rows] == [
        "adpcm_encode", MEDIA, "average",
    ]
    assert rows[1]["dyn_loads"] == "TIMEOUT"
    # Summary computed over successes only.
    assert rows[2]["speedup"] == pytest.approx(1.5)


def test_assemble_table_skips_other_suites():
    outcome = WorkloadOutcome(SPEC, "spec", STATUS_ERROR)
    assert assemble_table(media_spec(), [outcome]) == []


def test_outcome_payload_round_trip():
    outcome = WorkloadOutcome(
        MEDIA, "mediabench", STATUS_ERROR,
        error="boom", error_type="RuntimeError", attempts=2, elapsed=1.25,
    )
    restored = WorkloadOutcome.from_payload(MEDIA, outcome.payload())
    assert restored.cached
    assert restored.status == STATUS_ERROR
    assert restored.error == "boom"
    assert restored.attempts == 2
