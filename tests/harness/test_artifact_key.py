"""Determinism of the content-keyed artifact store's keys.

The parallel scheduler's prepare task writes a bundle under
``artifact_key(...)`` in one process and every sim task looks it up in
others; a key that differs between processes (e.g. because a part's
repr embeds a memory address) silently breaks the handoff.  These tests
pin the canonicalization rules.
"""

import pytest

from repro.harness.artifacts import artifact_key
from repro.sim.machine import MachineConfig, SelectionMode


class NoRepr:
    """Default object.__repr__: '<... object at 0x7f...>'."""


class GoodRepr:
    def __init__(self, value):
        self.value = value

    def __repr__(self):
        return f"GoodRepr({self.value})"


def test_same_parts_same_key():
    machine = MachineConfig()
    args = ("022.li", 0.05, machine, False, True, None, 1)
    assert artifact_key(*args) == artifact_key(*args)
    # Equal but distinct dataclass instances canonicalize identically.
    assert artifact_key(*args) == artifact_key(
        "022.li", 0.05, MachineConfig(), False, True, None, 1
    )


def test_any_part_change_changes_key():
    base = artifact_key("022.li", 0.05, None, False, True, None, 1)
    assert artifact_key("130.li", 0.05, None, False, True, None, 1) != base
    assert artifact_key("022.li", 0.06, None, False, True, None, 1) != base
    assert artifact_key("022.li", 0.05, None, True, True, None, 1) != base
    assert artifact_key("022.li", 0.05, None, False, True, None, 2) != base


def test_key_format():
    key = artifact_key("x")
    assert len(key) == 32
    assert all(c in "0123456789abcdef" for c in key)


def test_dict_and_set_order_insensitive():
    assert artifact_key({"a": 1, "b": 2}) == artifact_key({"b": 2, "a": 1})
    assert artifact_key({1, 2, 3}) == artifact_key({3, 1, 2})


def test_scalar_types_do_not_collide():
    assert artifact_key(True) != artifact_key(1)
    assert artifact_key(1) != artifact_key(1.0)
    assert artifact_key("1") != artifact_key(1)
    assert artifact_key(None) != artifact_key("None")
    assert artifact_key([1, 2]) != artifact_key((1, 2))


def test_enums_key_on_identity_not_address():
    assert artifact_key(SelectionMode.COMPILER) == artifact_key(
        SelectionMode.COMPILER
    )
    assert artifact_key(SelectionMode.COMPILER) != artifact_key(
        SelectionMode.HARDWARE
    )


def test_default_object_repr_is_rejected():
    with pytest.raises(TypeError, match="memory address"):
        artifact_key("022.li", NoRepr())
    # Nested inside a container too.
    with pytest.raises(TypeError):
        artifact_key(["022.li", {"k": NoRepr()}])


def test_custom_repr_objects_are_accepted():
    assert artifact_key(GoodRepr(3)) == artifact_key(GoodRepr(3))
    assert artifact_key(GoodRepr(3)) != artifact_key(GoodRepr(4))
