"""format_table must not drop columns absent from the first row.

Degraded (ERROR/TIMEOUT) rows carry only a benchmark name and a marker;
when such a row happens to come first, the table previously collapsed
to its two keys and silently hid every data column.
"""

from repro.harness.reporting import format_table


def test_columns_default_to_union_of_all_rows():
    rows = [
        {"benchmark": "022.li", "speedup": "ERROR"},  # degraded, first
        {"benchmark": "130.li", "speedup": 1.08, "rate_pd": 93.5},
        {"benchmark": "072.sc", "speedup": 1.11, "rate_nt": 8.1},
    ]
    text = format_table(rows)
    header = text.splitlines()[0]
    assert "rate_pd" in header
    assert "rate_nt" in header
    assert "93.50" in text
    assert "8.10" in text


def test_column_order_is_first_seen():
    rows = [{"a": 1}, {"b": 2, "a": 3}, {"c": 4}]
    header = format_table(rows).splitlines()[0].split()
    assert header == ["a", "b", "c"]


def test_missing_cells_render_empty():
    rows = [{"a": 1}, {"b": 2}]
    lines = format_table(rows).splitlines()
    assert lines[2].strip() == "1"


def test_explicit_columns_still_win():
    rows = [{"a": 1, "b": 2}]
    text = format_table(rows, columns=["b"])
    assert "a" not in text.splitlines()[0]
