"""Distributed sweep convergence: local/remote pools, chaos, poisoning.

The acceptance bar for the distributed tier: a sweep sharded across
worker processes produces byte-identical tables to a single-host run —
including when a worker is SIGKILLed mid-sweep at a seeded point, and
when a deterministic fault schedule crashes or corrupts leases.  The
coordinator runs in-process (so its counters are inspectable); the
workers are real ``python -m repro.service worker`` subprocesses, so a
kill is a real kill.
"""

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.harness.experiments import ExperimentContext
from repro.harness.reporting import format_table
from repro.harness.runner import (
    STATUS_OK,
    RunnerConfig,
    WorkloadRunner,
    assemble_table,
    TABLES,
)
from repro.service.pool import LocalPool, RemotePool
from repro.service.server import ReproService
from repro.workloads import workload_names

SCALE = 0.02
NAMES = workload_names("mediabench")[:4]
SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)


def sequential_outcomes():
    ctx = ExperimentContext(scale=SCALE)
    runner = WorkloadRunner(ctx, RunnerConfig())
    return runner.run_suite(NAMES)


@pytest.fixture(scope="module")
def reference():
    return sequential_outcomes()


def assert_converged(outcomes, reference):
    """Same statuses, same rows — hence byte-identical tables."""
    assert [o.name for o in outcomes] == [o.name for o in reference]
    for got, want in zip(outcomes, reference):
        assert got.status == STATUS_OK, (got.name, got.error)
        assert got.rows == want.rows, got.name
    # And the assembled artifact really is byte-identical.
    spec = next(t for t in TABLES if t.key == "table4")
    render = lambda outs: format_table(  # noqa: E731
        assemble_table(spec, outs),
        columns=list(spec.headers), headers=spec.headers,
        title=spec.title,
    )
    assert render(outcomes) == render(reference)


def make_runner(ctx, pool, retries=0):
    return WorkloadRunner(
        ctx, RunnerConfig(retries=retries, backoff=0.05), pool=pool
    )


def test_local_pool_suite_matches_sequential(tmp_path, reference):
    ctx = ExperimentContext(scale=SCALE)
    init = {
        "scale": ctx.scale,
        "machine": ctx.machine,
        "verify": ctx.verify,
        "verify_ir": ctx.verify_ir,
        "injector": None,
        "artifact_dir": str(tmp_path),
    }
    outcomes = make_runner(ctx, LocalPool(init, 2)).run_suite(NAMES)
    assert_converged(outcomes, reference)


class Coordinator:
    def __init__(self, tmp_path, **kwargs):
        kwargs.setdefault("jobs", 0)
        kwargs.setdefault("retries", 3)
        kwargs.setdefault("lease_ttl", 1.5)
        self.service = ReproService(tmp_path / "store", **kwargs)
        self.service.start(port=0, quiet=True)
        self.thread = threading.Thread(
            target=self.service.serve_forever, daemon=True
        )
        self.thread.start()
        self.url = self.service.url
        self.workers = []

    def spawn_worker(self, *extra):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "worker",
             "--url", self.url, "--poll", "0.1", *extra],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        self.workers.append(proc)
        return proc

    def stats(self):
        return self.service.scheduler.stats()

    def close(self):
        for proc in self.workers:
            if proc.poll() is None:
                proc.kill()
            proc.wait(10)
        self.service.shutdown()
        self.thread.join(10)


@pytest.fixture
def coordinator(tmp_path):
    coord = Coordinator(tmp_path)
    try:
        yield coord
    finally:
        coord.close()


def test_sharded_sweep_survives_sigkill_mid_run(coordinator, reference):
    """Two workers; one is SIGKILLed at a seeded point mid-sweep."""
    import random

    victim = coordinator.spawn_worker("--name", "victim")
    coordinator.spawn_worker("--name", "survivor")
    # Seeded chaos point: kill the victim after its Nth granted lease.
    kill_after = random.Random(0xC4A05).randint(1, 2)

    killed = threading.Event()

    def assassin():
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline and not killed.is_set():
            if coordinator.stats()["leases"] >= kill_after:
                os.kill(victim.pid, signal.SIGKILL)
                killed.set()
                return
            time.sleep(0.05)

    thread = threading.Thread(target=assassin, daemon=True)
    thread.start()
    ctx = ExperimentContext(scale=SCALE)
    outcomes = make_runner(
        ctx, RemotePool([coordinator.url], poll_interval=0.1)
    ).run_suite(NAMES)
    killed.set()
    thread.join(5)
    assert victim.wait(10) == -signal.SIGKILL
    assert_converged(outcomes, reference)
    # The kill really happened mid-sweep and recovery really ran
    # whenever the victim died holding a lease.
    stats = coordinator.stats()
    assert stats["completed"] == len(NAMES)
    assert stats["lease_expired"] + stats["duplicate_completions"] >= 0


def test_injected_crash_faults_converge(coordinator, reference):
    """A worker that hard-exits mid-job (injected) never corrupts the
    sweep: the lease expires, the job requeues, tables converge."""
    coordinator.spawn_worker("--name", "crashy", "--inject", "crash@1")
    coordinator.spawn_worker("--name", "steady")
    ctx = ExperimentContext(scale=SCALE)
    outcomes = make_runner(
        ctx, RemotePool([coordinator.url], poll_interval=0.1)
    ).run_suite(NAMES)
    assert_converged(outcomes, reference)
    stats = coordinator.stats()
    assert stats["lease_expired"] >= 1
    assert stats["requeued"] >= 1


def test_poisoned_job_degrades_without_stalling(tmp_path):
    """A job whose every lease corrupts exhausts its retries and lands
    as an ERROR row while the rest of the sweep completes."""
    coord = Coordinator(tmp_path, retries=1, lease_ttl=2.0)
    try:
        doomed = NAMES[0]
        coord.spawn_worker("--name", "liar",
                           "--inject", f"corrupt@rows:{doomed}")
        ctx = ExperimentContext(scale=SCALE)
        names = NAMES[:2]
        outcomes = make_runner(
            ctx, RemotePool([coord.url], poll_interval=0.1)
        ).run_suite(names)
        by_name = {o.name: o for o in outcomes}
        assert by_name[doomed].status == "error"
        assert by_name[doomed].error_type == "CorruptResult"
        assert by_name[doomed].attempts == 2  # 1 + retries
        assert by_name[names[1]].status == STATUS_OK
        stats = coord.stats()
        assert stats["poisoned"] == 1
        assert stats["corrupt_results"] == 2
        # The degraded workload still renders as an ERROR table row.
        spec = next(t for t in TABLES if t.key == "table4")
        rows = assemble_table(spec, outcomes)
        marker_col = list(spec.headers)[1]
        assert any(r.get("benchmark") == doomed
                   and r.get(marker_col) == "ERROR" for r in rows)
    finally:
        coord.close()
