"""Register-convention tests."""

import pytest

from repro.isa import registers as R


def test_register_counts():
    assert R.NUM_INT_REGS == 64
    assert R.NUM_FP_REGS == 64


def test_special_registers_distinct():
    specials = {R.ZERO, R.RV, R.SP, R.RA}
    assert len(specials) == 4
    assert R.SP == 62
    assert R.RA == 63
    assert R.ZERO == 0


def test_arg_regs_do_not_overlap_pools():
    from repro.compiler.regalloc import INT_CALLER_POOL, INT_CALLEE_POOL

    pools = set(INT_CALLER_POOL) | set(INT_CALLEE_POOL)
    assert not pools & set(R.ARG_REGS)
    assert R.RV not in pools
    assert R.SP not in pools
    assert R.RA not in pools
    assert R.ZERO not in pools


def test_scratch_not_allocatable():
    from repro.compiler.regalloc import (
        INT_CALLEE_POOL,
        INT_CALLER_POOL,
        INT_SCRATCH,
    )

    pools = set(INT_CALLER_POOL) | set(INT_CALLEE_POOL)
    assert not pools & set(INT_SCRATCH)


def test_int_reg_names():
    assert R.int_reg_name(0) == "r0"
    assert R.int_reg_name(17) == "r17"
    assert R.int_reg_name(R.SP) == "sp"
    assert R.int_reg_name(R.RA) == "ra"
    with pytest.raises(ValueError):
        R.int_reg_name(64)
    with pytest.raises(ValueError):
        R.int_reg_name(-1)


def test_fp_reg_names():
    assert R.fp_reg_name(0) == "f0"
    assert R.fp_reg_name(63) == "f63"
    with pytest.raises(ValueError):
        R.fp_reg_name(64)


@pytest.mark.parametrize(
    "name,expected",
    [
        ("r0", ("int", 0)),
        ("r63", ("int", 63)),
        ("sp", ("int", 62)),
        ("ra", ("int", 63)),
        ("f12", ("fp", 12)),
    ],
)
def test_parse_reg_name(name, expected):
    assert R.parse_reg_name(name) == expected


@pytest.mark.parametrize("bad", ["r64", "f64", "x1", "r", "r-1", ""])
def test_parse_reg_name_rejects(bad):
    with pytest.raises(ValueError):
        R.parse_reg_name(bad)


def test_round_trip_all_names():
    for i in range(64):
        bank, idx = R.parse_reg_name(R.int_reg_name(i))
        assert (bank, idx) == ("int", i)
        bank, idx = R.parse_reg_name(R.fp_reg_name(i))
        assert (bank, idx) == ("fp", i)
