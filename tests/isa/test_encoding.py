"""Binary encoding round-trip tests (Table 1: the scheme specifier fits
in the instruction encoding)."""

import pytest

from repro.isa import Imm, Instruction, LoadSpec, Opcode, Reg
from repro.isa.encoding import EncodingError, decode, encode, encode_program


def round_trip(inst, target_index=None):
    word, reloc = encode(inst, target_index)
    return decode(word, reloc)


def assert_same(a, b):
    assert a.opcode is b.opcode
    assert a.dest == b.dest
    assert a.srcs == b.srcs
    assert a.lspec is b.lspec


def test_alu_round_trip():
    inst = Instruction(Opcode.ADD, Reg(5), [Reg(6), Reg(7)])
    assert_same(inst, round_trip(inst))


def test_alu_immediate_round_trip():
    inst = Instruction(Opcode.ADD, Reg(5), [Reg(6), Imm(-12345)])
    assert_same(inst, round_trip(inst))


@pytest.mark.parametrize("spec", list(LoadSpec))
def test_load_spec_round_trip(spec):
    """Table 1: all three load specifiers are encodable."""
    inst = Instruction(Opcode.LD, Reg(1), [Reg(2), Imm(4)], lspec=spec)
    back = round_trip(inst)
    assert back.lspec is spec
    assert_same(inst, back)


def test_reg_reg_load_round_trip():
    inst = Instruction(Opcode.LD, Reg(1), [Reg(2), Reg(3)], lspec=LoadSpec.E)
    assert_same(inst, round_trip(inst))


def test_store_round_trip():
    inst = Instruction(Opcode.ST, None, [Reg(1), Reg(2), Imm(8)])
    assert_same(inst, round_trip(inst))


def test_reg_reg_store_round_trip():
    inst = Instruction(Opcode.STB, None, [Reg(1), Reg(2), Reg(3)])
    assert_same(inst, round_trip(inst))


def test_fp_round_trip():
    inst = Instruction(Opcode.FADD, Reg(2, "fp"), [Reg(3, "fp"), Reg(4, "fp")])
    back = round_trip(inst)
    assert back.dest.bank == "fp"
    assert_same(inst, back)


def test_branch_with_target():
    inst = Instruction(Opcode.BEQ, None, [Reg(1), Imm(0)], target="somewhere")
    word, reloc = encode(inst, 17)
    assert reloc == 17
    back = decode(word, reloc, {17: "somewhere"})
    assert back.target == "somewhere"


def test_branch_without_target_index_rejected():
    inst = Instruction(Opcode.JMP, target="L")
    with pytest.raises(EncodingError):
        encode(inst)


def test_virtual_register_rejected():
    inst = Instruction(Opcode.ADD, Reg(1, virtual=True), [Reg(2), Imm(0)])
    with pytest.raises(EncodingError):
        encode(inst)


def test_out_of_range_immediate_rejected():
    inst = Instruction(Opcode.MOV, Reg(1), [Imm(1 << 40)])
    with pytest.raises(EncodingError):
        encode(inst)


def test_extreme_immediates():
    for value in (-(1 << 31), (1 << 31) - 1, 0, -1):
        inst = Instruction(Opcode.MOV, Reg(1), [Imm(value)])
        assert round_trip(inst).srcs[0] == Imm(value)


def test_encode_whole_program():
    from tests.isa.test_program import simple_program

    p = simple_program().layout()
    encoded = encode_program(p.flat, p.label_index)
    assert len(encoded) == len(p.flat)
    index_to_label = {v: k for k, v in p.label_index.items()}
    for (word, reloc), original in zip(encoded, p.flat):
        back = decode(word, reloc, index_to_label)
        assert back.opcode is original.opcode
        if original.target:
            assert back.target == original.target


def test_specifier_uses_two_bits():
    """The paper's claim: the three cases need only two opcode bits."""
    words = set()
    for spec in LoadSpec:
        inst = Instruction(Opcode.LD, Reg(1), [Reg(2), Imm(4)], lspec=spec)
        word, _ = encode(inst)
        words.add(word)
    # The three encodings differ only in bits [8:10).
    masked = {w & ~(0x3 << 8) for w in words}
    assert len(words) == 3
    assert len(masked) == 1
