"""Instruction and operand representation tests."""

import pytest

from repro.isa import Imm, Instruction, LoadSpec, Opcode, Reg, Sym


def ld(dest, base, disp, spec=LoadSpec.N):
    return Instruction(Opcode.LD, dest, [base, disp], lspec=spec)


def test_reg_equality_and_hash():
    assert Reg(5) == Reg(5)
    assert Reg(5) != Reg(6)
    assert Reg(5) != Reg(5, "fp")
    assert Reg(5, virtual=True) != Reg(5)
    assert hash(Reg(5)) == hash(Reg(5))
    assert Reg(5).key == ("int", 5, False)


def test_reg_repr():
    assert repr(Reg(4)) == "r4"
    assert repr(Reg(62)) == "sp"
    assert repr(Reg(3, "fp")) == "f3"
    assert repr(Reg(9, virtual=True)) == "v9"
    assert repr(Reg(9, "fp", virtual=True)) == "vf9"


def test_bad_bank_rejected():
    with pytest.raises(ValueError):
        Reg(1, "vector")


def test_imm_and_sym():
    assert Imm(5) == Imm(5)
    assert Imm(5) != Imm(6)
    assert Sym("a") == Sym("a")
    assert Sym("a", 4) != Sym("a")
    assert repr(Sym("tbl", 8)) == "tbl+8"


def test_load_accessors():
    inst = ld(Reg(1), Reg(2), Imm(8))
    assert inst.is_load and not inst.is_store
    assert inst.mem_base == Reg(2)
    assert inst.mem_disp == Imm(8)
    assert inst.is_reg_offset
    assert not inst.is_absolute


def test_reg_reg_addressing_mode():
    inst = ld(Reg(1), Reg(2), Reg(3))
    assert not inst.is_reg_offset
    assert not inst.is_absolute


def test_absolute_addressing():
    inst = ld(Reg(1), Reg(0), Imm(0x2000))
    assert inst.is_absolute
    sym = ld(Reg(1), Reg(0), Sym("glob"))
    assert sym.is_absolute
    assert sym.is_reg_offset  # symbolic displacement is constant


def test_store_accessors():
    inst = Instruction(Opcode.ST, None, [Reg(1), Reg(2), Imm(4)])
    assert inst.is_store
    assert inst.mem_base == Reg(2)
    assert inst.mem_disp == Imm(4)


def test_mem_accessors_reject_non_memory():
    inst = Instruction(Opcode.ADD, Reg(1), [Reg(2), Reg(3)])
    with pytest.raises(ValueError):
        _ = inst.mem_base
    with pytest.raises(ValueError):
        _ = inst.mem_disp


def test_uses_and_defs():
    inst = Instruction(Opcode.ADD, Reg(1), [Reg(2), Imm(3)])
    assert inst.uses() == (Reg(2),)
    assert inst.defs() == (Reg(1),)
    branch = Instruction(Opcode.BEQ, None, [Reg(1), Reg(2)], target="L")
    assert set(branch.uses()) == {Reg(1), Reg(2)}
    assert branch.defs() == ()


def test_mnemonic_includes_load_spec():
    assert ld(Reg(1), Reg(2), Imm(0)).mnemonic() == "ld_n"
    assert ld(Reg(1), Reg(2), Imm(0), LoadSpec.P).mnemonic() == "ld_p"
    assert ld(Reg(1), Reg(2), Imm(0), LoadSpec.E).mnemonic() == "ld_e"
    assert Instruction(Opcode.ADD, Reg(1), [Reg(2), Imm(1)]).mnemonic() == "add"


def test_branch_properties():
    jmp = Instruction(Opcode.JMP, target="L1")
    assert jmp.is_branch and not jmp.is_cond_branch
    beq = Instruction(Opcode.BEQ, None, [Reg(1), Imm(0)], target="L1")
    assert beq.is_branch and beq.is_cond_branch


def test_copy_preserves_fields():
    inst = ld(Reg(1), Reg(2), Imm(8), LoadSpec.E)
    inst.uid = 42
    inst.addr = 0x1000
    dup = inst.copy()
    assert dup.opcode is inst.opcode
    assert dup.lspec is LoadSpec.E
    assert dup.uid == 42
    assert dup.addr == 0x1000
    assert dup is not inst
