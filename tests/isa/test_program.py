"""Program container and layout tests."""

import pytest

from repro.isa import (
    CODE_BASE,
    DATA_BASE,
    INSTR_SIZE,
    DataItem,
    Function,
    Imm,
    Instruction,
    Label,
    Opcode,
    Program,
    Reg,
)


def simple_program():
    p = Program()
    f = Function("main")
    f.append(Instruction(Opcode.MOV, Reg(1), [Imm(1)]))
    f.append(Label("loop"))
    f.append(Instruction(Opcode.ADD, Reg(1), [Reg(1), Imm(1)]))
    f.append(Instruction(Opcode.BLT, None, [Reg(1), Imm(5)], target="loop"))
    f.append(Instruction(Opcode.HALT))
    p.add_function(f)
    return p


def test_layout_assigns_uids_and_addrs():
    p = simple_program().layout()
    assert [i.uid for i in p.flat] == [0, 1, 2, 3]
    assert p.flat[0].addr == CODE_BASE
    assert p.flat[3].addr == CODE_BASE + 3 * INSTR_SIZE


def test_resolve_label():
    p = simple_program().layout()
    assert p.resolve_label("loop") == 1
    assert p.resolve_label("main") == 0
    with pytest.raises(KeyError):
        p.resolve_label("nope")


def test_entry_function_laid_first():
    p = Program()
    other = Function("helper")
    other.append(Instruction(Opcode.RET))
    p.add_function(other)
    main = Function("main")
    main.append(Instruction(Opcode.HALT))
    p.add_function(main)
    p.layout()
    assert p.func_index["main"] == 0
    assert p.func_index["helper"] == 1


def test_duplicate_function_rejected():
    p = simple_program()
    with pytest.raises(ValueError):
        p.add_function(Function("main"))


def test_duplicate_label_rejected():
    p = Program()
    f = Function("main")
    f.append(Label("x"))
    f.append(Instruction(Opcode.NOP))
    f.append(Label("x"))
    f.append(Instruction(Opcode.HALT))
    p.add_function(f)
    with pytest.raises(ValueError):
        p.layout()


def test_data_layout_alignment():
    p = simple_program()
    p.add_data(DataItem("a", 3, align=1))
    p.add_data(DataItem("b", 8, align=8))
    p.layout()
    assert p.data_addr("a") == DATA_BASE
    assert p.data_addr("b") % 8 == 0
    assert p.data_addr("b") >= DATA_BASE + 3


def test_data_item_initial_bytes():
    item = DataItem("x", 8, init=[1, -1])
    raw = item.initial_bytes()
    assert raw == b"\x01\x00\x00\x00\xff\xff\xff\xff"
    assert DataItem("y", 4).initial_bytes() == bytes(4)
    assert DataItem("z", 4, init=b"ab").initial_bytes() == b"ab\x00\x00"


def test_data_item_oversized_init_rejected():
    with pytest.raises(ValueError):
        DataItem("x", 2, init=[1]).initial_bytes()


def test_static_loads():
    p = Program()
    f = Function("main")
    f.append(Instruction(Opcode.LD, Reg(1), [Reg(2), Imm(0)]))
    f.append(Instruction(Opcode.ADD, Reg(1), [Reg(1), Imm(1)]))
    f.append(Instruction(Opcode.FLD, Reg(0, "fp"), [Reg(2), Imm(8)]))
    f.append(Instruction(Opcode.HALT))
    p.add_function(f)
    p.layout()
    loads = p.static_loads()
    assert len(loads) == 2
    assert all(i.is_load for i in loads)


def test_not_laid_out_guard():
    p = simple_program()
    with pytest.raises(RuntimeError):
        p.resolve_label("loop")
