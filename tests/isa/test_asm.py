"""Assembler tests: parsing, execution, and round-tripping."""

import pytest

from repro.isa.asm import AsmError, format_program, parse_asm
from repro.isa.opcodes import LoadSpec, Opcode
from repro.sim.executor import execute


def test_minimal_program():
    program = parse_asm(
        """
        main:
            mov r1, 7
            out r1
            halt
        """
    )
    assert execute(program).output == [7]


def test_data_and_loads():
    program = parse_asm(
        """
        .data tbl 12 = 10 20 30
        main:
            lea r4, tbl
            ld_p r5, r4(4)
            out r5
            ld_n r6, r0(tbl+8)      ; absolute with symbol+offset
            out r6
            halt
        """
    )
    result = execute(program)
    assert result.output == [20, 30]
    loads = program.static_loads()
    assert loads[0].lspec is LoadSpec.P
    assert loads[1].lspec is LoadSpec.N
    assert loads[1].is_absolute


def test_ascii_directive():
    program = parse_asm(
        """
        .ascii msg "hi\\n"
        main:
            lea r4, msg
        loop:
            ldb_n r5, r4(0)
            beq r5, 0, done
            outc r5
            add r4, r4, 1
            jmp loop
        done:
            halt
        """
    )
    assert execute(program).text == "hi\n"


def test_loop_and_branches():
    program = parse_asm(
        """
        main:
            mov r5, 0
            mov r6, 0
        loop:
            add r5, r5, r6
            add r6, r6, 1
            blt r6, 10, loop
            out r5
            halt
        """
    )
    assert execute(program).output == [45]


def test_functions_and_calls():
    program = parse_asm(
        """
        .entry main
        .func main
        main:
            mov r2, 5
            call triple
            out r1
            halt
        .func triple
        triple:
            mul r1, r2, 3
            ret
        """
    )
    assert execute(program).output == [15]
    assert set(program.functions) == {"main", "triple"}


def test_store_forms():
    program = parse_asm(
        """
        .data buf 16
        main:
            lea r4, buf
            mov r5, 99
            st r5, r4(0)
            mov r6, 8
            st r5, r4(r6)          ; register displacement
            ld_n r7, r4(0)
            out r7
            halt
        """
    )
    assert execute(program).output == [99]


def test_comments_and_blank_lines():
    program = parse_asm(
        """
        ; leading comment

        main:            ; function
            mov r1, 1    ; set
            halt         ; stop
        """
    )
    assert execute(program).steps == 2


@pytest.mark.parametrize(
    "bad,fragment",
    [
        ("main:\n  bogus r1, r2\n", "unknown mnemonic"),
        ("main:\n  ld_p r1\n", "loads take"),
        ("main:\n  ld_p r1, r2\n", "bad memory operand"),
        ("main:\n  mov 5, r1\n", "destination must be a register"),
        ("  mov r1, 1\n", "before any label"),
        ("main:\n  blt r1, 5\n", "branches take"),
        (".data x\nmain:\n  halt\n", ".data takes"),
        (".wat 3\nmain:\n  halt\n", "unknown directive"),
        ("main:\n  mov r1, @@\n", "bad operand"),
        ("", "no code"),
    ],
)
def test_errors(bad, fragment):
    with pytest.raises(AsmError) as exc:
        parse_asm(bad)
    assert fragment in str(exc.value)


def test_error_carries_line_number():
    with pytest.raises(AsmError) as exc:
        parse_asm("main:\n  halt\n  bogus\n")
    assert exc.value.line == 3


def test_round_trip_compiled_program():
    """compiler output -> format_program -> parse_asm -> same behavior."""
    from repro.compiler.driver import compile_source

    result = compile_source(
        """
        int tbl[8] = {1, 2, 3, 4, 5, 6, 7, 8};
        int sum(int n) {
            int i; int s = 0;
            for (i = 0; i < n; i++) { s += tbl[i]; }
            return s;
        }
        int main() { print_int(sum(8)); return 0; }
        """,
        inline=False,
    )
    original = execute(result.program)
    text = format_program(result.program)
    reparsed = parse_asm(text)
    replayed = execute(reparsed)
    assert replayed.output == original.output
    # classifications survive the round trip
    orig_specs = [i.lspec for i in result.program.static_loads()]
    new_specs = [i.lspec for i in reparsed.static_loads()]
    assert orig_specs == new_specs


def test_round_trip_preserves_fld_spec():
    from repro.isa import (
        DataItem,
        Function,
        Imm,
        Instruction,
        Program,
        Reg,
        Sym,
    )
    import struct

    p = Program()
    f = Function("main")
    f.append(
        Instruction(
            Opcode.FLD, Reg(1, "fp"), [Reg(0), Sym("c")], lspec=LoadSpec.P
        )
    )
    f.append(Instruction(Opcode.CVTFI, Reg(1), [Reg(1, "fp")]))
    f.append(Instruction(Opcode.OUT, None, [Reg(1)]))
    f.append(Instruction(Opcode.HALT))
    p.add_function(f)
    p.add_data(DataItem("c", 8, struct.pack("<d", 4.0), 8))
    p.layout()
    text = format_program(p)
    reparsed = parse_asm(text)
    assert reparsed.static_loads()[0].lspec is LoadSpec.P
    assert execute(reparsed).output == [4]


def test_hex_and_negative_immediates():
    program = parse_asm(
        """
        main:
            mov r1, 0x10
            add r1, r1, -6
            out r1
            halt
        """
    )
    assert execute(program).output == [10]
