"""Opcode classification and latency tests."""

from repro.isa.opcodes import (
    ARITHMETIC_OPS,
    BRANCH_OPS,
    COND_BRANCH_OPS,
    FP_ALU_OPS,
    INT_ALU_OPS,
    LOAD_OPS,
    MEM_OPS,
    STORE_OPS,
    TERMINATOR_OPS,
    FuncUnit,
    LoadSpec,
    Opcode,
    func_unit_of,
    latency_of,
)


def test_load_store_partition():
    assert LOAD_OPS & STORE_OPS == frozenset()
    assert LOAD_OPS | STORE_OPS == MEM_OPS


def test_classes_are_disjoint():
    assert not INT_ALU_OPS & MEM_OPS
    assert not INT_ALU_OPS & BRANCH_OPS
    assert not FP_ALU_OPS & INT_ALU_OPS
    assert not MEM_OPS & BRANCH_OPS


def test_every_opcode_has_a_home():
    from repro.isa.opcodes import SYSTEM_OPS

    covered = INT_ALU_OPS | FP_ALU_OPS | MEM_OPS | BRANCH_OPS | SYSTEM_OPS
    assert covered == frozenset(Opcode)


def test_cond_branches_subset_of_branches():
    assert COND_BRANCH_OPS < BRANCH_OPS
    assert Opcode.JMP in BRANCH_OPS
    assert Opcode.CALL in BRANCH_OPS
    assert Opcode.RET in BRANCH_OPS
    assert Opcode.JMP not in COND_BRANCH_OPS


def test_terminators():
    assert Opcode.HALT in TERMINATOR_OPS
    assert Opcode.JMP in TERMINATOR_OPS
    assert Opcode.ADD not in TERMINATOR_OPS
    assert Opcode.LD not in TERMINATOR_OPS


def test_pa7100_like_latencies():
    # Most integer ops are single-cycle; loads are two-cycle.
    assert latency_of(Opcode.ADD) == 1
    assert latency_of(Opcode.MOV) == 1
    assert latency_of(Opcode.CMPEQ) == 1
    assert latency_of(Opcode.LD) == 2
    assert latency_of(Opcode.LDB) == 2
    assert latency_of(Opcode.FLD) == 2
    assert latency_of(Opcode.MUL) > 1
    assert latency_of(Opcode.DIV) > latency_of(Opcode.MUL)


def test_functional_units():
    assert func_unit_of(Opcode.ADD) is FuncUnit.INT_ALU
    assert func_unit_of(Opcode.LD) is FuncUnit.MEM_PORT
    assert func_unit_of(Opcode.ST) is FuncUnit.MEM_PORT
    assert func_unit_of(Opcode.FADD) is FuncUnit.FP_ALU
    assert func_unit_of(Opcode.BEQ) is FuncUnit.BRANCH
    assert func_unit_of(Opcode.CALL) is FuncUnit.BRANCH
    assert func_unit_of(Opcode.NOP) is FuncUnit.NONE


def test_arithmetic_ops_for_s_load():
    # The S_load fixed point propagates through integer arithmetic,
    # including MOV (the paper lists "mov, add, sub").
    assert Opcode.MOV in ARITHMETIC_OPS
    assert Opcode.ADD in ARITHMETIC_OPS
    assert Opcode.SUB in ARITHMETIC_OPS
    assert Opcode.SLL in ARITHMETIC_OPS
    assert Opcode.LD not in ARITHMETIC_OPS
    assert Opcode.BEQ not in ARITHMETIC_OPS


def test_load_spec_values():
    assert {s.value for s in LoadSpec} == {"n", "p", "e"}
