"""Direct tests for the late (allocator-created-load) classification."""

from repro.compiler.classify import classify_late_loads
from repro.isa import (
    Function,
    Imm,
    Instruction,
    Label,
    LoadSpec,
    Opcode,
    Reg,
)
from repro.isa.registers import SP


def I(op, dest=None, srcs=(), target=None, lspec=LoadSpec.N):  # noqa: E743
    return Instruction(op, dest, srcs, target, lspec)


def sp_load(dest, offset):
    return I(Opcode.LD, Reg(dest), [Reg(SP), Imm(offset)])


def test_in_loop_reload_becomes_pd():
    reload_inst = sp_load(58, 20)
    f = Function("f")
    f.append(I(Opcode.MOV, Reg(6), [Imm(0)]))
    f.append(Label("loop"))
    f.append(reload_inst)
    f.append(I(Opcode.ADD, Reg(6), [Reg(6), Imm(1)]))
    f.append(I(Opcode.BLT, None, [Reg(6), Imm(9)], "loop"))
    f.append(I(Opcode.RET))
    classify_late_loads(f, [reload_inst])
    assert reload_inst.lspec is LoadSpec.P


def test_epilogue_restores_win_raddr_when_larger():
    restores = [sp_load(26 + k, 4 * k) for k in range(4)]
    old_e = I(Opcode.LD, Reg(9), [Reg(8), Imm(0)], lspec=LoadSpec.E)
    f = Function("f")
    f.append(old_e)
    for restore in restores:
        f.append(restore)
    f.append(I(Opcode.RET))
    classify_late_loads(f, restores)
    assert all(r.lspec is LoadSpec.E for r in restores)
    assert old_e.lspec is LoadSpec.N  # demoted: sp group is larger


def test_small_restore_group_stays_normal():
    restore = sp_load(26, 4)
    group_e = [
        I(Opcode.LD, Reg(10 + k), [Reg(8), Imm(4 * k)], lspec=LoadSpec.E)
        for k in range(3)
    ]
    f = Function("f")
    for inst in group_e:
        f.append(inst)
    f.append(restore)
    f.append(I(Opcode.RET))
    classify_late_loads(f, [restore])
    assert restore.lspec is LoadSpec.N
    assert all(inst.lspec is LoadSpec.E for inst in group_e)


def test_no_created_loads_is_a_noop():
    inst = I(Opcode.LD, Reg(9), [Reg(8), Imm(0)], lspec=LoadSpec.E)
    f = Function("f")
    f.append(inst)
    f.append(I(Opcode.RET))
    classify_late_loads(f, [])
    assert inst.lspec is LoadSpec.E
