"""LICM, strength reduction, and inlining tests."""

from repro.compiler.cfg import CFG
from repro.compiler.driver import compile_source
from repro.compiler.irgen import generate_ir
from repro.compiler.loops import find_loops
from repro.compiler.opt import (
    coalesce_moves,
    constant_propagation,
    copy_propagation,
    dead_code_elimination,
    inline_functions,
    loop_invariant_code_motion,
    promote_locals,
    simplify_control_flow,
    strength_reduction,
)
from repro.isa.opcodes import Opcode
from repro.lang.parser import parse
from repro.lang.sema import analyze
from tests.conftest import output_of


def prepared_ir(source):
    unit = parse(source)
    module = generate_ir(unit, analyze(unit))
    for fir in module.funcs.values():
        simplify_control_flow(fir)
        promote_locals(fir)
        for _ in range(4):
            changed = constant_propagation(fir)
            changed |= copy_propagation(fir)
            changed |= coalesce_moves(fir)
            changed |= dead_code_elimination(fir)
            if not changed:
                break
    return module


def loop_opcodes(fir):
    """Opcodes of instructions inside any loop of the function."""
    cfg = CFG(fir.func)
    inside = set()
    for loop in find_loops(cfg):
        inside.update(loop.blocks)
    return [
        inst.opcode
        for index in inside
        for inst in cfg.blocks[index].instrs
    ]


class TestLicm:
    SRC = """
    int g = 7;
    int main() {
        int i; int s = 0;
        for (i = 0; i < 50; i++) {
            s += g * 3;     /* g load and the multiply are invariant */
        }
        print_int(s);
        return 0;
    }
    """

    def test_invariant_load_hoisted(self):
        module = prepared_ir(self.SRC)
        fir = module.funcs["main"]
        assert Opcode.LD in loop_opcodes(fir)
        assert loop_invariant_code_motion(fir)
        assert Opcode.LD not in loop_opcodes(fir)

    def test_output_preserved(self):
        assert output_of(self.SRC) == [50 * 21]

    def test_store_in_loop_blocks_hoisting_aliased_load(self):
        src = """
        int g = 0;
        int main() {
            int i; int s = 0;
            for (i = 0; i < 10; i++) {
                g = g + 1;     /* store to g: the load must stay */
                s += g;
            }
            print_int(s);
            return 0;
        }
        """
        module = prepared_ir(src)
        fir = module.funcs["main"]
        loop_invariant_code_motion(fir)
        assert Opcode.LD in loop_opcodes(fir)
        assert output_of(src) == [55]

    def test_call_in_loop_blocks_load_hoisting(self):
        src = """
        int g = 1;
        void touch() { g = g + 1; }
        int main() {
            int i; int s = 0;
            for (i = 0; i < 5; i++) { touch(); s += g; }
            print_int(s);
            return 0;
        }
        """
        # inlining is off here, so the call stays
        module = prepared_ir(src)
        fir = module.funcs["main"]
        loop_invariant_code_motion(fir)
        assert Opcode.LD in loop_opcodes(fir)
        assert output_of(src, inline=False) == [2 + 3 + 4 + 5 + 6]

    def test_different_global_store_does_not_block(self):
        src = """
        int g = 3; int h = 0;
        int main() {
            int i; int s = 0;
            for (i = 0; i < 10; i++) {
                h = i;        /* store to a different global */
                s += g;
            }
            print_int(s + h);
            return 0;
        }
        """
        module = prepared_ir(src)
        fir = module.funcs["main"]
        loop_invariant_code_motion(fir)
        loop_loads = [op for op in loop_opcodes(fir) if op is Opcode.LD]
        assert not loop_loads  # g hoisted despite the store to h
        assert output_of(src) == [39]


class TestStrengthReduction:
    SRC = """
    int arr[64];
    int main() {
        int i; int s = 0;
        for (i = 0; i < 64; i++) { s += arr[i] * 3; }
        print_int(s);
        return 0;
    }
    """

    def test_indexing_shift_removed_from_loop(self):
        module = prepared_ir(self.SRC)
        fir = module.funcs["main"]
        loop_invariant_code_motion(fir)
        before = loop_opcodes(fir).count(Opcode.SLL)
        assert before >= 1
        assert strength_reduction(fir)
        after = [
            op
            for op in loop_opcodes(fir)
            if op in (Opcode.SLL, Opcode.MUL)
        ]
        # the i*4 shift became a strided accumulator; the *3 multiply of
        # the LOADED value is not an induction variable and must remain
        assert loop_opcodes(fir).count(Opcode.SLL) < before

    def test_output_preserved(self):
        assert output_of(self.SRC) == [0]

    def test_downcounting_loop(self):
        src = """
        int arr[16];
        int main() {
            int i; int s = 0;
            for (i = 0; i < 16; i++) { arr[i] = i; }
            for (i = 15; i >= 0; i--) { s += arr[i]; }
            print_int(s);
            return 0;
        }
        """
        assert output_of(src) == [120]

    def test_data_multiply_not_reduced(self):
        # v * k where v is loop-variant data (not an IV) must survive
        module = prepared_ir(self.SRC)
        fir = module.funcs["main"]
        strength_reduction(fir)
        constant_propagation(fir)
        dead_code_elimination(fir)
        assert Opcode.MUL in loop_opcodes(fir) or Opcode.SLL in [
            op for op in loop_opcodes(fir)
        ]


class TestInlining:
    def test_small_callee_inlined(self):
        src = """
        int add3(int x) { return x + 3; }
        int main() { print_int(add3(4) + add3(5)); return 0; }
        """
        unit = parse(src)
        module = generate_ir(unit, analyze(unit))
        assert inline_functions(module)
        main = module.funcs["main"].func
        calls = [i for i in main.instructions() if i.opcode is Opcode.CALL]
        assert not calls
        assert output_of(src) == [15]

    def test_self_recursive_not_inlined(self):
        src = """
        int fact(int n) { return n <= 1 ? 1 : n * fact(n - 1); }
        int main() { print_int(fact(5)); return 0; }
        """
        unit = parse(src)
        module = generate_ir(unit, analyze(unit))
        inline_functions(module)
        main = module.funcs["main"].func
        calls = [i for i in main.instructions() if i.opcode is Opcode.CALL]
        assert calls  # the recursive callee stayed out of line
        assert output_of(src) == [120]

    def test_chain_inlining(self):
        src = """
        int one() { return 1; }
        int two() { return one() + one(); }
        int main() { print_int(two() + one()); return 0; }
        """
        unit = parse(src)
        module = generate_ir(unit, analyze(unit))
        inline_functions(module)
        main = module.funcs["main"].func
        assert not [
            i for i in main.instructions() if i.opcode is Opcode.CALL
        ]
        assert output_of(src) == [3]

    def test_inlined_locals_do_not_collide(self):
        src = """
        int f(int x) { int t = x * 2; return t + 1; }
        int main() {
            int t = 100;
            print_int(f(3));
            print_int(t);
            return 0;
        }
        """
        assert output_of(src) == [7, 100]

    def test_inlined_array_local_frame_shift(self):
        src = """
        int fill(int seed) {
            int tmp[4];
            int i;
            for (i = 0; i < 4; i++) { tmp[i] = seed + i; }
            return tmp[0] + tmp[3];
        }
        int main() {
            int mine[2];
            mine[0] = 50;
            print_int(fill(10));
            print_int(mine[0]);
            return 0;
        }
        """
        assert output_of(src) == [23, 50]

    def test_callee_limit_respected(self):
        unit = parse(
            """
            int big(int x) { """
            + " ".join(f"x = x + {i};" for i in range(100))
            + """ return x; }
            int main() { print_int(big(0)); return 0; }
            """
        )
        module = generate_ir(unit, analyze(unit))
        inline_functions(module, callee_limit=20)
        main = module.funcs["main"].func
        assert [i for i in main.instructions() if i.opcode is Opcode.CALL]
