"""Register-allocation tests."""

from repro.compiler.driver import compile_source
from repro.compiler.regalloc import (
    INT_CALLEE_POOL,
    INT_CALLER_POOL,
    INT_SCRATCH,
)
from repro.isa.instruction import Reg
from repro.isa.opcodes import Opcode
from repro.sim.executor import execute
from tests.conftest import output_of


def all_regs(program):
    regs = set()
    for func in program.functions.values():
        for inst in func.instructions():
            if inst.dest is not None:
                regs.add(inst.dest)
            for src in inst.srcs:
                if isinstance(src, Reg):
                    regs.add(src)
    return regs


def test_no_virtual_registers_survive():
    result = compile_source(
        """
        int main() {
            int a = 1; int b = 2; int c = a + b;
            print_int(c * (a - b));
            return 0;
        }
        """
    )
    assert all(not r.virtual for r in all_regs(result.program))


def test_values_live_across_calls_get_callee_saved():
    result = compile_source(
        """
        int id(int x) { return x; }
        int main() {
            int keep = 41;
            id(0);
            print_int(keep + 1);
            return 0;
        }
        """,
        inline=False,
    )
    assert execute(result.program).output == [42]


def test_prologue_epilogue_balance():
    result = compile_source(
        """
        int helper(int a) { return a * 2; }
        int main() { print_int(helper(21)); return 0; }
        """,
        inline=False,
    )
    main = result.program.functions["main"]
    instrs = list(main.instructions())
    subs = [
        i
        for i in instrs
        if i.opcode is Opcode.SUB
        and i.dest is not None
        and i.dest.index == 62
    ]
    adds = [
        i
        for i in instrs
        if i.opcode is Opcode.ADD
        and i.dest is not None
        and i.dest.index == 62
    ]
    assert len(subs) == 1 and len(adds) == 1
    assert subs[0].srcs[1].value == adds[0].srcs[1].value
    assert subs[0].srcs[1].value % 16 == 0  # frame alignment


def test_ra_saved_in_non_leaf():
    result = compile_source(
        """
        int f() { return 3; }
        int main() { return f() + f(); }
        """,
        inline=False,
    )
    main = result.program.functions["main"]
    ra_stores = [
        i
        for i in main.instructions()
        if i.is_store
        and isinstance(i.srcs[0], Reg)
        and i.srcs[0].index == 63
    ]
    assert ra_stores


def test_leaf_function_does_not_save_ra():
    result = compile_source(
        """
        int leaf(int x) { return x + 1; }
        int main() { print_int(leaf(1)); return 0; }
        """,
        inline=False,
    )
    leaf = result.program.functions["leaf"]
    ra_stores = [
        i
        for i in leaf.instructions()
        if i.is_store
        and isinstance(i.srcs[0], Reg)
        and i.srcs[0].index == 63
    ]
    assert not ra_stores


def test_high_pressure_spills_correctly():
    """More simultaneously-live values than registers: spill path."""
    n = 60
    decls = "\n".join(
        f"int v{i} = {i} + k;" for i in range(n)
    )
    total = " + ".join(f"v{i}" for i in range(n))
    src = f"""
    int mix(int k) {{
        {decls}
        k = k * 2;
        return {total} + k;
    }}
    int main() {{ print_int(mix(1)); print_int(mix(3)); return 0; }}
    """
    expected1 = sum(i + 1 for i in range(n)) + 2
    expected2 = sum(i + 3 for i in range(n)) + 6
    assert output_of(src) == [expected1, expected2]


def test_spill_slots_do_not_clobber_locals():
    n = 40
    decls = "\n".join(f"int v{i} = arr[{i}] * 2;" for i in range(n))
    total = " + ".join(f"v{i}" for i in range(n))
    src = f"""
    int arr[{n}];
    int main() {{
        int i;
        for (i = 0; i < {n}; i++) {{ arr[i] = i; }}
        {decls}
        print_int({total});
        return 0;
    }}
    """
    assert output_of(src) == [sum(i * 2 for i in range(n))]


def test_fp_register_allocation():
    src = """
    double a; double b; double c; double d;
    int main() {
        a = 1.5; b = 2.5; c = a * b; d = c - a;
        double e = d / b;
        print_int((int) (e * 100.0));
        return 0;
    }
    """
    assert output_of(src) == [int((1.5 * 2.5 - 1.5) / 2.5 * 100)]


def test_allocated_registers_stay_in_pools():
    result = compile_source(
        """
        int f(int a, int b) { return a * b + a - b; }
        int main() {
            int x = f(3, 4);
            int y = f(x, 5);
            print_int(x + y);
            return 0;
        }
        """
    )
    allowed = (
        set(INT_CALLER_POOL)
        | set(INT_CALLEE_POOL)
        | set(INT_SCRATCH)
        | {0, 1, 2, 3, 4, 5, 6, 7, 62, 63}
    )
    for reg in all_regs(result.program):
        if reg.bank == "int":
            assert reg.index in allowed, reg
