"""Compilation-driver interface tests."""

import pytest

from repro.compiler.driver import CompileOptions, compile_source

SRC = """
int helper(int x) { return x * 2; }
int main() { print_int(helper(21)); return 0; }
"""


def test_options_object_and_kwargs_are_exclusive():
    with pytest.raises(TypeError):
        compile_source(SRC, CompileOptions(), opt_level=1)


def test_default_options():
    opts = CompileOptions()
    assert opts.opt_level == 2
    assert opts.classify
    assert opts.inline


def test_classify_off_leaves_ld_n():
    result = compile_source(SRC, classify=False)
    counts = result.class_counts()
    assert counts["p"] == 0 and counts["e"] == 0


def test_listing_contains_all_functions():
    result = compile_source(SRC, inline=False)
    listing = result.listing()
    assert "main:" in listing
    assert "helper:" in listing


def test_inline_option_controls_call_sites():
    from repro.isa.opcodes import Opcode

    inlined = compile_source(SRC)  # helper is tiny: inlined
    kept = compile_source(SRC, inline=False)

    def calls(result):
        return sum(
            1
            for inst in result.program.functions["main"].instructions()
            if inst.opcode is Opcode.CALL
        )

    assert calls(inlined) == 0
    assert calls(kept) == 1


def test_result_program_is_laid_out():
    result = compile_source(SRC)
    assert result.program.laid_out
    assert result.program.flat


@pytest.mark.parametrize("level", [0, 1, 2])
def test_all_levels_produce_runnable_code(level):
    from repro.sim.executor import execute

    result = compile_source(SRC, opt_level=level)
    assert execute(result.program).output == [42]


def test_opt_level_reduces_code_size():
    naive = compile_source(SRC, opt_level=0)
    optimized = compile_source(SRC, opt_level=2)
    assert len(optimized.program.flat) < len(naive.program.flat)
