"""Section 4.3 profile-guided reclassification tests."""

from repro.compiler.driver import compile_source
from repro.compiler.profile_feedback import (
    apply_overrides,
    profile_loads,
    profile_overrides,
)
from repro.isa.opcodes import LoadSpec
from repro.sim.executor import execute
from repro.sim.stride_table import UnboundedPredictor

# A sorted index array makes tbl[idx[i]] highly stride-predictable, yet
# the heuristics must classify it NT (the index is loaded, reg+reg mode).
PREDICTABLE_NT = """
int idx[64];
int tbl[64];
int main() {
    int i; int s = 0;
    for (i = 0; i < 64; i++) { idx[i] = i; tbl[i] = i * 3; }
    for (i = 0; i < 64; i++) { s += tbl[idx[i]]; }
    print_int(s);
    return 0;
}
"""

# A pointer-chasing NT load is genuinely unpredictable and must stay NT.
UNPREDICTABLE_NT = """
int idx[64];
int tbl[64];
int main() {
    int i; int s = 0;
    for (i = 0; i < 64; i++) { idx[i] = (i * 37 + 11) % 64; tbl[i] = i; }
    for (i = 0; i < 64; i++) { s += tbl[idx[i]]; }
    print_int(s);
    return 0;
}
"""


def compiled_and_traced(src):
    result = compile_source(src)
    trace = execute(result.program).trace
    return result, trace


def nt_loads(program):
    return [
        inst for inst in program.static_loads() if inst.lspec is LoadSpec.N
    ]


def test_predictable_nt_flipped_to_pd():
    result, trace = compiled_and_traced(PREDICTABLE_NT)
    assert nt_loads(result.program)  # the heuristics said NT
    overrides = profile_overrides(result.program, trace)
    assert overrides  # profiling disagrees
    assert all(spec is LoadSpec.P for spec in overrides.values())


def test_unpredictable_nt_not_flipped():
    result, trace = compiled_and_traced(UNPREDICTABLE_NT)
    hot_nt = [
        i for i in nt_loads(result.program) if not i.is_reg_offset
    ]
    assert hot_nt
    overrides = profile_overrides(result.program, trace)
    assert all(inst.uid not in overrides for inst in hot_nt)


def test_only_nt_loads_are_overruled():
    """The paper: "nothing else will be overruled" — PD and EC loads
    keep their classes no matter what the profile says."""
    result, trace = compiled_and_traced(PREDICTABLE_NT)
    overrides = profile_overrides(result.program, trace)
    non_nt_uids = {
        inst.uid
        for inst in result.program.static_loads()
        if inst.lspec is not LoadSpec.N
    }
    assert not set(overrides) & non_nt_uids


def test_threshold_respected():
    result, trace = compiled_and_traced(PREDICTABLE_NT)
    strict = profile_overrides(result.program, trace, threshold=0.999)
    lax = profile_overrides(result.program, trace, threshold=0.0)
    assert len(strict) <= len(profile_overrides(result.program, trace))
    assert len(lax) >= len(strict)


def test_apply_overrides_mutates():
    result, trace = compiled_and_traced(PREDICTABLE_NT)
    overrides = profile_overrides(result.program, trace)
    changed = apply_overrides(result.program, overrides)
    assert changed == len(overrides)
    for uid, spec in overrides.items():
        assert result.program.flat[uid].lspec is spec
    # idempotent
    assert apply_overrides(result.program, overrides) == 0


def test_profile_loads_counts_every_dynamic_load():
    result, trace = compiled_and_traced(PREDICTABLE_NT)
    predictor = profile_loads(trace)
    assert predictor.accesses == trace.dynamic_load_count()


def test_rate_exactly_at_threshold_is_not_flipped():
    """The threshold is strict: a measured rate of exactly 60% stays NT.

    The paper flips loads whose rate *exceeds* the threshold; an
    injected predictor pins the rate to the boundary precisely.
    """
    result, trace = compiled_and_traced(PREDICTABLE_NT)
    target = nt_loads(result.program)[0]
    predictor = UnboundedPredictor()
    predictor.per_load[target.uid] = [100, 60]  # rate == 0.60 exactly
    overrides = profile_overrides(
        result.program, trace, threshold=0.60, predictor=predictor
    )
    assert target.uid not in overrides


def test_rate_one_above_threshold_is_flipped():
    result, trace = compiled_and_traced(PREDICTABLE_NT)
    target = nt_loads(result.program)[0]
    predictor = UnboundedPredictor()
    predictor.per_load[target.uid] = [100, 61]  # rate == 0.61 > 0.60
    overrides = profile_overrides(
        result.program, trace, threshold=0.60, predictor=predictor
    )
    assert overrides == {target.uid: LoadSpec.P}


def test_perfect_rate_never_overrules_pd_or_ec():
    """Even a 100% measured rate must not touch ld_p/ld_e loads."""
    result, trace = compiled_and_traced(PREDICTABLE_NT)
    non_nt = [
        inst for inst in result.program.static_loads()
        if inst.lspec is not LoadSpec.N
    ]
    assert non_nt  # the source produces PD and EC loads
    predictor = UnboundedPredictor()
    for inst in non_nt:
        predictor.per_load[inst.uid] = [100, 100]
    overrides = profile_overrides(
        result.program, trace, threshold=0.60, predictor=predictor
    )
    assert not overrides


def test_never_executed_loads_not_flipped():
    src = """
    int g = 5;
    int main() {
        if (0) { print_int(g); }   /* dead load, if it survives at all */
        print_int(1);
        return 0;
    }
    """
    result = compile_source(src)
    trace = execute(result.program).trace
    overrides = profile_overrides(result.program, trace)
    executed = {uid for uid, _ in trace.load_addresses()}
    assert set(overrides) <= executed
