"""Liveness-analysis tests."""

from repro.compiler.cfg import CFG
from repro.compiler.dataflow import Liveness, inst_defs, inst_uses
from repro.isa import Function, Imm, Instruction, Label, Opcode, Reg


def I(op, dest=None, srcs=(), target=None):  # noqa: E743
    return Instruction(op, dest, srcs, target)


def v(i):
    return Reg(i, virtual=True)


def make(items):
    f = Function("f")
    for item in items:
        f.append(item)
    return f


def test_inst_uses_defs():
    add = I(Opcode.ADD, v(1), [v(2), Imm(3)])
    assert inst_uses(add) == [v(2).key]
    assert inst_defs(add) == [v(1).key]


def test_call_clobbers_caller_saved():
    call = I(Opcode.CALL, target="g")
    defs = set(inst_defs(call))
    assert ("int", 1, False) in defs  # rv
    assert ("int", 25, False) in defs  # last caller-saved
    assert ("int", 26, False) not in defs  # callee-saved survives
    assert ("int", 63, False) in defs  # ra


def test_ret_uses_return_registers():
    uses = set(inst_uses(I(Opcode.RET)))
    assert ("int", 63, False) in uses
    assert ("int", 1, False) in uses


def test_straight_line_liveness():
    func = make(
        [
            I(Opcode.MOV, v(1), [Imm(5)]),
            I(Opcode.ADD, v(2), [v(1), Imm(1)]),
            I(Opcode.OUT, None, [v(2)]),
            I(Opcode.HALT),
        ]
    )
    cfg = CFG(func)
    live = Liveness(cfg)
    after = live.per_instruction(0)
    assert v(1).key in after[0]  # live after its def
    assert v(1).key not in after[1]  # dead after last use
    assert v(2).key in after[1]
    assert v(2).key not in after[2]


def test_loop_carried_liveness():
    func = make(
        [
            I(Opcode.MOV, v(1), [Imm(0)]),
            Label("loop"),
            I(Opcode.ADD, v(1), [v(1), Imm(1)]),
            I(Opcode.BLT, None, [v(1), Imm(10)], "loop"),
            I(Opcode.OUT, None, [v(1)]),
            I(Opcode.HALT),
        ]
    )
    cfg = CFG(func)
    live = Liveness(cfg)
    loop_idx = cfg.label_block["loop"]
    # v1 is live around the back edge
    assert v(1).key in live.live_in[loop_idx]
    assert v(1).key in live.live_out[loop_idx]


def test_branch_divergent_liveness():
    func = make(
        [
            I(Opcode.MOV, v(1), [Imm(1)]),
            I(Opcode.MOV, v(2), [Imm(2)]),
            I(Opcode.BEQ, None, [v(1), Imm(0)], "other"),
            I(Opcode.OUT, None, [v(1)]),
            I(Opcode.HALT),
            Label("other"),
            I(Opcode.OUT, None, [v(2)]),
            I(Opcode.HALT),
        ]
    )
    cfg = CFG(func)
    live = Liveness(cfg)
    entry_out = live.live_out[0]
    assert v(1).key in entry_out
    assert v(2).key in entry_out
    # in the fallthrough block, v2 is dead
    fall = cfg.blocks[1]
    assert v(2).key not in live.live_in[fall.index]


def test_dead_def_not_live():
    func = make(
        [
            I(Opcode.MOV, v(1), [Imm(1)]),
            I(Opcode.MOV, v(1), [Imm(2)]),  # kills previous def
            I(Opcode.OUT, None, [v(1)]),
            I(Opcode.HALT),
        ]
    )
    live = Liveness(CFG(func))
    after = live.per_instruction(0)
    # after the first MOV, v1's *new* value is not yet needed: the
    # second MOV redefines it, so the first def is dead.
    assert v(1).key not in after[0]
