"""End-to-end language-feature tests: compile mini-C, emulate, check
output — at every optimization level (so each pass is exercised against
a functional oracle)."""

import pytest

from tests.conftest import output_of, run_all_levels


def test_arith_basics():
    assert run_all_levels(
        """
        int main() {
            print_int(2 + 3 * 4);
            print_int((2 + 3) * 4);
            print_int(10 / 3);
            print_int(10 % 3);
            print_int(-10 / 3);
            print_int(-10 % 3);
            print_int(1 << 10);
            print_int(-16 >> 2);
            print_int(0xF0 & 0x3C);
            print_int(0xF0 | 0x0F);
            print_int(0xFF ^ 0x0F);
            print_int(~0);
            return 0;
        }
        """
    ) == [14, 20, 3, 1, -3, -1, 1024, -4, 0x30, 0xFF, 0xF0, -1]


def test_overflow_wraps_32_bits():
    assert run_all_levels(
        """
        int main() {
            int big = 2147483647;
            print_int(big + 1);
            print_int(big * 2);
            return 0;
        }
        """
    ) == [-2147483648, -2]


def test_comparisons_and_logic():
    assert run_all_levels(
        """
        int main() {
            print_int(3 < 4);
            print_int(4 <= 3);
            print_int(5 == 5);
            print_int(5 != 5);
            print_int(1 && 0);
            print_int(1 || 0);
            print_int(!7);
            print_int(!0);
            return 0;
        }
        """
    ) == [1, 0, 1, 0, 0, 1, 0, 1]


def test_short_circuit_side_effects():
    assert run_all_levels(
        """
        int hits = 0;
        int bump() { hits++; return 1; }
        int main() {
            int x = 0 && bump();
            int y = 1 || bump();
            print_int(hits);
            print_int(1 && bump());
            print_int(hits);
            return x + y;
        }
        """
    ) == [0, 1, 1]


def test_ternary():
    assert run_all_levels(
        """
        int main() {
            int a = 5;
            print_int(a > 3 ? 10 : 20);
            print_int(a < 3 ? 10 : 20);
            return 0;
        }
        """
    ) == [10, 20]


def test_incdec_semantics():
    assert run_all_levels(
        """
        int main() {
            int i = 5;
            print_int(i++);
            print_int(i);
            print_int(++i);
            print_int(i--);
            print_int(--i);
            return 0;
        }
        """
    ) == [5, 6, 7, 7, 5]


def test_compound_assignment():
    assert run_all_levels(
        """
        int main() {
            int x = 10;
            x += 5; print_int(x);
            x -= 3; print_int(x);
            x *= 2; print_int(x);
            x /= 4; print_int(x);
            x %= 4; print_int(x);
            x <<= 3; print_int(x);
            x >>= 1; print_int(x);
            x |= 3; print_int(x);
            x &= 6; print_int(x);
            x ^= 5; print_int(x);
            return 0;
        }
        """
    ) == [15, 12, 24, 6, 2, 16, 8, 11, 2, 7]


def test_control_flow():
    assert run_all_levels(
        """
        int main() {
            int i; int total = 0;
            for (i = 0; i < 10; i++) {
                if (i == 3) { continue; }
                if (i == 8) { break; }
                total += i;
            }
            print_int(total);
            while (total > 20) { total -= 7; }
            print_int(total);
            do { total++; } while (total < 18);
            print_int(total);
            return 0;
        }
        """
    ) == [25, 18, 19]


def test_nested_loops():
    assert run_all_levels(
        """
        int main() {
            int i; int j; int c = 0;
            for (i = 0; i < 5; i++) {
                for (j = 0; j <= i; j++) { c++; }
            }
            print_int(c);
            return 0;
        }
        """
    ) == [15]


def test_zero_trip_loop():
    assert run_all_levels(
        """
        int main() {
            int i; int c = 0;
            for (i = 10; i < 5; i++) { c++; }
            print_int(c);
            while (0) { c++; }
            print_int(c);
            return 0;
        }
        """
    ) == [0, 0]


def test_globals_and_arrays():
    assert run_all_levels(
        """
        int g = 7;
        int arr[5] = {10, 20, 30};
        int main() {
            print_int(g);
            print_int(arr[0] + arr[1] + arr[2] + arr[3] + arr[4]);
            arr[4] = g;
            g = arr[1];
            print_int(arr[4]);
            print_int(g);
            return 0;
        }
        """
    ) == [7, 60, 7, 20]


def test_char_semantics():
    assert run_all_levels(
        """
        char buf[4];
        int main() {
            char c = 'A';
            buf[0] = c + 1;
            buf[1] = 300;        /* narrows to 44 */
            print_int(buf[0]);
            print_int(buf[1]);
            print_int((char) 260);
            print_char(buf[0]);
            return 0;
        }
        """
    ) == [66, 44, 4]


def test_string_literals():
    from tests.conftest import run_c

    res = run_c(
        """
        int main() {
            char *s = "ok!";
            int i = 0;
            while (s[i]) { print_char(s[i]); i++; }
            print_int(i);
            return 0;
        }
        """
    )
    assert res.text == "ok!"
    assert res.output == [3]


def test_pointers_and_address_of():
    assert run_all_levels(
        """
        int main() {
            int x = 5;
            int *p = &x;
            *p = 9;
            print_int(x);
            print_int(*p + 1);
            return 0;
        }
        """
    ) == [9, 10]


def test_pointer_arithmetic():
    assert run_all_levels(
        """
        int arr[6] = {1, 2, 3, 4, 5, 6};
        int main() {
            int *p = arr;
            int *q = &arr[4];
            print_int(*(p + 2));
            print_int(q - p);
            p += 3;
            print_int(*p);
            p--;
            print_int(*p);
            print_int(p < q);
            return 0;
        }
        """
    ) == [3, 4, 4, 3, 1]


def test_nested_struct_members():
    assert run_all_levels(
        """
        struct point { int x; int y; };
        struct rect { struct point a; struct point b; };
        struct rect r;
        int main() {
            struct point p;
            p.x = 3; p.y = 4;
            r.a.x = p.x;
            r.b.y = p.y * 2;
            print_int(r.a.x + r.b.y);
            return 0;
        }
        """
    ) == [11]


def test_struct_member_access():
    assert run_all_levels(
        """
        struct point { int x; int y; };
        struct point g;
        int main() {
            struct point p;
            struct point *q = &p;
            p.x = 3;
            q->y = 4;
            g.x = p.x + q->y;
            print_int(g.x);
            print_int(p.y);
            return 0;
        }
        """
    ) == [7, 4]


def test_struct_in_array():
    assert run_all_levels(
        """
        struct item { int key; int val; };
        struct item items[4];
        int main() {
            int i;
            for (i = 0; i < 4; i++) {
                items[i].key = i;
                items[i].val = i * i;
            }
            print_int(items[3].val + items[2].key);
            return 0;
        }
        """
    ) == [11]


def test_malloc_linked_list():
    assert run_all_levels(
        """
        struct node { int v; struct node *next; };
        int main() {
            struct node *head = 0;
            int i; int total = 0;
            for (i = 0; i < 5; i++) {
                struct node *n = (struct node *) malloc(sizeof(struct node));
                n->v = i * 10;
                n->next = head;
                head = n;
            }
            while (head) { total += head->v; head = head->next; }
            print_int(total);
            return 0;
        }
        """
    ) == [100]


def test_functions_and_recursion():
    assert run_all_levels(
        """
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        int fact(int n) { return n <= 1 ? 1 : n * fact(n - 1); }
        int main() {
            print_int(fib(12));
            print_int(fact(7));
            return 0;
        }
        """
    ) == [144, 5040]


def test_mutual_recursion():
    # No prototypes needed: sema collects all signatures before bodies.
    assert run_all_levels(
        """
        int is_even(int n) { if (n == 0) { return 1; } return is_odd(n - 1); }
        int is_odd(int n) { if (n == 0) { return 0; } return is_even(n - 1); }
        int main() { print_int(is_even(10)); print_int(is_odd(7)); return 0; }
        """
    ) == [1, 1]


def test_many_arguments():
    assert run_all_levels(
        """
        int sum6(int a, int b, int c, int d, int e, int f) {
            return a + b + c + d + e + f;
        }
        int main() { print_int(sum6(1, 2, 3, 4, 5, 6)); return 0; }
        """
    ) == [21]


def test_void_function():
    assert run_all_levels(
        """
        int counter = 0;
        void tick() { counter++; }
        int main() { tick(); tick(); tick(); print_int(counter); return 0; }
        """
    ) == [3]


def test_doubles():
    assert run_all_levels(
        """
        int main() {
            double a = 1.5;
            double b = a * 4.0;
            double c = b / 3.0;
            print_int((int) b);
            print_int((int) (c * 100.0));
            print_int(a < b);
            print_int(b == 6.0);
            print_int((int) -2.7);
            return 0;
        }
        """
    ) == [6, 200, 1, 1, -2]


def test_double_int_mixing():
    assert run_all_levels(
        """
        double half(int x) { return x / 2.0; }
        int main() {
            double d = half(7);
            print_int((int) (d * 10.0));
            int i = 3;
            d = i;        /* implicit int -> double */
            print_int((int) (d + 0.5));
            i = 2.9;      /* implicit double -> int: truncation */
            print_int(i);
            return 0;
        }
        """
    ) == [35, 3, 2]


def test_double_array_and_global():
    assert run_all_levels(
        """
        double weights[4] = {0.5, 1.5, 2.5, 3.5};
        double total = 0.0;
        int main() {
            int i;
            for (i = 0; i < 4; i++) { total = total + weights[i]; }
            print_int((int) total);
            return 0;
        }
        """
    ) == [8]


def test_deep_expression():
    assert run_all_levels(
        """
        int main() {
            int a = 1; int b = 2; int c = 3; int d = 4;
            print_int(((a + b) * (c + d) - (a * d)) << 1 | (b & c));
            return 0;
        }
        """
    ) == [(((1 + 2) * (3 + 4) - 4) << 1) | 2]


def test_global_shadowed_by_local():
    assert run_all_levels(
        """
        int x = 100;
        int main() {
            int x = 5;
            { int x = 7; print_int(x); }
            print_int(x);
            return 0;
        }
        """
    ) == [7, 5]


def test_halt_builtin_stops():
    assert output_of(
        """
        int main() {
            print_int(1);
            halt();
            print_int(2);
            return 0;
        }
        """
    ) == [1]
