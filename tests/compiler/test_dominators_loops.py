"""Dominator and natural-loop analysis tests."""

from repro.compiler.cfg import CFG
from repro.compiler.dominators import dominators, immediate_dominators
from repro.compiler.loops import find_loops
from repro.isa import Function, Imm, Instruction, Label, Opcode, Reg


def I(op, dest=None, srcs=(), target=None):  # noqa: E743
    return Instruction(op, dest, srcs, target)


def make(items):
    f = Function("f")
    for item in items:
        f.append(item)
    return f


def diamond_cfg():
    return CFG(
        make(
            [
                I(Opcode.BEQ, None, [Reg(1), Imm(0)], "t"),
                I(Opcode.MOV, Reg(2), [Imm(1)]),
                I(Opcode.JMP, target="e"),
                Label("t"),
                I(Opcode.MOV, Reg(2), [Imm(2)]),
                Label("e"),
                I(Opcode.HALT),
            ]
        )
    )


def test_entry_dominates_everything():
    cfg = diamond_cfg()
    dom = dominators(cfg)
    for index in cfg.reachable():
        assert 0 in dom[index]


def test_diamond_join_not_dominated_by_arms():
    cfg = diamond_cfg()
    dom = dominators(cfg)
    join = cfg.label_block["e"]
    arm_t = cfg.label_block["t"]
    assert arm_t not in dom[join]
    assert dom[join] == {0, join}


def test_immediate_dominators():
    cfg = diamond_cfg()
    idom = immediate_dominators(cfg)
    join = cfg.label_block["e"]
    assert idom[join] == 0


def nested_loop_func():
    return make(
        [
            I(Opcode.MOV, Reg(1), [Imm(0)]),
            Label("outer"),
            I(Opcode.MOV, Reg(2), [Imm(0)]),
            Label("inner"),
            I(Opcode.ADD, Reg(2), [Reg(2), Imm(1)]),
            I(Opcode.BLT, None, [Reg(2), Imm(3)], "inner"),
            I(Opcode.ADD, Reg(1), [Reg(1), Imm(1)]),
            I(Opcode.BLT, None, [Reg(1), Imm(3)], "outer"),
            I(Opcode.HALT),
        ]
    )


def test_nested_loops_found_inner_first():
    cfg = CFG(nested_loop_func())
    loops = find_loops(cfg)
    assert len(loops) == 2
    inner, outer = loops
    assert len(inner.blocks) < len(outer.blocks)
    assert inner.blocks < outer.blocks
    assert inner.parent is outer
    assert inner.depth == 2
    assert outer.depth == 1


def test_loop_headers():
    cfg = CFG(nested_loop_func())
    loops = find_loops(cfg)
    headers = {cfg.blocks[lp.header].labels[0] for lp in loops}
    assert headers == {"inner", "outer"}


def test_no_loops_in_straight_line():
    cfg = diamond_cfg()
    assert find_loops(cfg) == []


def test_self_loop():
    cfg = CFG(
        make(
            [
                Label("spin"),
                I(Opcode.ADD, Reg(1), [Reg(1), Imm(1)]),
                I(Opcode.BLT, None, [Reg(1), Imm(9)], "spin"),
                I(Opcode.HALT),
            ]
        )
    )
    loops = find_loops(cfg)
    assert len(loops) == 1
    assert loops[0].blocks == {loops[0].header}


def test_two_back_edges_same_header_merge():
    cfg = CFG(
        make(
            [
                Label("head"),
                I(Opcode.BEQ, None, [Reg(1), Imm(0)], "alt"),
                I(Opcode.ADD, Reg(1), [Reg(1), Imm(1)]),
                I(Opcode.BLT, None, [Reg(1), Imm(5)], "head"),
                I(Opcode.JMP, target="out"),
                Label("alt"),
                I(Opcode.ADD, Reg(1), [Reg(1), Imm(2)]),
                I(Opcode.BLT, None, [Reg(1), Imm(5)], "head"),
                Label("out"),
                I(Opcode.HALT),
            ]
        )
    )
    loops = find_loops(cfg)
    assert len(loops) == 1  # merged: one loop with two latches
