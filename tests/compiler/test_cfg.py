"""Control-flow-graph construction tests."""

from repro.compiler.cfg import CFG
from repro.isa import Function, Imm, Instruction, Label, Opcode, Reg


def I(op, dest=None, srcs=(), target=None):  # noqa: E743
    return Instruction(op, dest, srcs, target)


def make(items):
    f = Function("f")
    for item in items:
        f.append(item)
    return f


def test_straight_line_single_block():
    cfg = CFG(
        make(
            [
                I(Opcode.MOV, Reg(1), [Imm(1)]),
                I(Opcode.ADD, Reg(1), [Reg(1), Imm(1)]),
                I(Opcode.HALT),
            ]
        )
    )
    assert len(cfg.blocks) == 1
    assert cfg.blocks[0].succs == []


def test_diamond():
    cfg = CFG(
        make(
            [
                I(Opcode.BEQ, None, [Reg(1), Imm(0)], "then"),
                I(Opcode.MOV, Reg(2), [Imm(1)]),
                I(Opcode.JMP, target="end"),
                Label("then"),
                I(Opcode.MOV, Reg(2), [Imm(2)]),
                Label("end"),
                I(Opcode.HALT),
            ]
        )
    )
    entry = cfg.blocks[0]
    assert len(entry.succs) == 2
    end_block = cfg.blocks[cfg.label_block["end"]]
    assert sorted(end_block.preds) == sorted(
        [cfg.label_block["then"], 1]
    )


def test_loop_back_edge():
    cfg = CFG(
        make(
            [
                I(Opcode.MOV, Reg(1), [Imm(0)]),
                Label("loop"),
                I(Opcode.ADD, Reg(1), [Reg(1), Imm(1)]),
                I(Opcode.BLT, None, [Reg(1), Imm(10)], "loop"),
                I(Opcode.HALT),
            ]
        )
    )
    loop_idx = cfg.label_block["loop"]
    loop_block = cfg.blocks[loop_idx]
    assert loop_idx in loop_block.succs  # self loop


def test_consecutive_labels_share_block():
    cfg = CFG(
        make(
            [
                I(Opcode.JMP, target="a"),
                Label("a"),
                Label("b"),
                I(Opcode.HALT),
            ]
        )
    )
    assert cfg.label_block["a"] == cfg.label_block["b"]


def test_call_does_not_split_block():
    cfg = CFG(
        make(
            [
                I(Opcode.MOV, Reg(2), [Imm(1)]),
                I(Opcode.CALL, target="g"),
                I(Opcode.MOV, Reg(3), [Reg(1)]),
                I(Opcode.HALT),
            ]
        )
    )
    assert len(cfg.blocks) == 1


def test_ret_has_no_successors():
    cfg = CFG(
        make(
            [
                I(Opcode.RET),
                Label("dead"),
                I(Opcode.HALT),
            ]
        )
    )
    assert cfg.blocks[0].succs == []


def test_unreachable_dropped_on_rebuild():
    func = make(
        [
            I(Opcode.JMP, target="end"),
            I(Opcode.MOV, Reg(1), [Imm(1)]),  # unreachable
            Label("end"),
            I(Opcode.HALT),
        ]
    )
    CFG(func).to_function()
    ops = [i.opcode for i in func.instructions()]
    assert Opcode.MOV not in ops


def test_round_trip_preserves_semantics():
    items = [
        I(Opcode.MOV, Reg(1), [Imm(0)]),
        Label("loop"),
        I(Opcode.ADD, Reg(1), [Reg(1), Imm(1)]),
        I(Opcode.BLT, None, [Reg(1), Imm(5)], "loop"),
        I(Opcode.OUT, None, [Reg(1)]),
        I(Opcode.HALT),
    ]
    func = make(items)
    before = [repr(i) for i in func.instructions()]
    CFG(func).to_function()
    after = [repr(i) for i in func.instructions()]
    assert before == after


def test_instructions_iterator():
    cfg = CFG(
        make(
            [
                I(Opcode.MOV, Reg(1), [Imm(0)]),
                Label("x"),
                I(Opcode.HALT),
            ]
        )
    )
    triples = list(cfg.instructions())
    assert len(triples) == 2
    assert triples[0][2].opcode is Opcode.MOV
