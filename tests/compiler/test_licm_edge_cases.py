"""LICM structural edge cases."""

from repro.compiler.cfg import CFG
from repro.compiler.loops import find_loops
from repro.compiler.opt import loop_invariant_code_motion
from repro.compiler.ir import FuncIR
from repro.isa import Function, Imm, Instruction, Label, Opcode, Reg
from repro.sim.executor import execute
from tests.conftest import output_of


def I(op, dest=None, srcs=(), target=None):  # noqa: E743
    return Instruction(op, dest, srcs, target)


def v(i, bank="int"):
    return Reg(i, bank, virtual=True)


def test_div_by_loop_variant_not_hoisted():
    assert output_of(
        """
        int main() {
            int i; int s = 0;
            for (i = 1; i <= 5; i++) { s += 100 / i; }
            print_int(s);
            return 0;
        }
        """
    ) == [100 + 50 + 33 + 25 + 20]


def test_div_by_constant_hoistable():
    src = """
    int g = 90;
    int main() {
        int i; int s = 0;
        for (i = 0; i < 7; i++) { s += g / 9; }
        print_int(s);
        return 0;
    }
    """
    assert output_of(src) == [70]


def test_zero_trip_loop_with_hoisted_load_is_safe():
    """A hoisted invariant load must not fault or change results when
    the loop body never executes."""
    assert output_of(
        """
        int g = 5;
        int main() {
            int i; int s = 1;
            for (i = 10; i < 3; i++) { s += g * 2; }
            print_int(s);
            return 0;
        }
        """
    ) == [1]


def test_value_defined_before_loop_and_inside_not_hoisted():
    # x is live-in to the loop (used before redefined): not hoistable
    assert output_of(
        """
        int main() {
            int i; int x = 100; int s = 0;
            for (i = 0; i < 4; i++) {
                s += x;      /* uses previous iteration's x */
                x = i * 10;
            }
            print_int(s);
            return 0;
        }
        """
    ) == [100 + 0 + 10 + 20]


def test_nested_loop_invariant_hoists_past_both():
    src = """
    int g = 3;
    int main() {
        int i; int j; int s = 0;
        for (i = 0; i < 4; i++) {
            for (j = 0; j < 4; j++) {
                s += g;      /* invariant in both loops */
            }
        }
        print_int(s);
        return 0;
    }
    """
    assert output_of(src) == [48]

    # and the load really leaves the inner loop
    from repro.lang.parser import parse
    from repro.lang.sema import analyze
    from repro.compiler.irgen import generate_ir
    from repro.compiler.opt import (
        promote_locals,
        constant_propagation,
        copy_propagation,
        coalesce_moves,
        dead_code_elimination,
    )

    unit = parse(src)
    module = generate_ir(unit, analyze(unit))
    fir = module.funcs["main"]
    promote_locals(fir)
    for _ in range(4):
        if not (
            constant_propagation(fir)
            | copy_propagation(fir)
            | coalesce_moves(fir)
            | dead_code_elimination(fir)
        ):
            break
    loop_invariant_code_motion(fir)
    cfg = CFG(fir.func)
    loop_blocks = set()
    for loop in find_loops(cfg):
        loop_blocks |= loop.blocks
    loads_in_loops = [
        inst
        for b in loop_blocks
        for inst in cfg.blocks[b].instrs
        if inst.is_load
    ]
    assert not loads_in_loops


def test_hand_built_loop_with_fallthrough_preheader_hazard():
    """A loop block positionally before the header (fallthrough back
    edge) makes positional preheader insertion unsafe; LICM must bail
    rather than mis-place code."""
    f = Function("f")
    # layout: entry -> jmp header; body falls through into header
    f.append(I(Opcode.MOV, v(1), [Imm(0)]))
    f.append(I(Opcode.MOV, v(9), [Imm(7)]))
    f.append(I(Opcode.JMP, target="header"))
    f.append(Label("body"))
    f.append(I(Opcode.ADD, v(2), [v(9), Imm(1)]))  # hoistable-looking
    f.append(I(Opcode.ADD, v(1), [v(1), Imm(1)]))
    # falls through into header
    f.append(Label("header"))
    f.append(I(Opcode.BLT, None, [v(1), Imm(5)], "body"))
    f.append(I(Opcode.OUT, None, [v(1)]))
    f.append(I(Opcode.RET))
    fir = FuncIR(f)
    fir.next_vreg = 20
    before = [repr(i) for i in f.instructions()]
    loop_invariant_code_motion(fir)
    # either unchanged (bailed) or still structurally valid; in both
    # cases no instruction may be lost
    after_ops = sum(1 for _ in f.instructions())
    assert after_ops >= len(before) - 1
