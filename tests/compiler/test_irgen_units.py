"""IR-generation unit and error-path tests."""

import pytest

from repro.compiler.irgen import IRGenError, generate_ir
from repro.isa.instruction import Imm, Reg, Sym
from repro.isa.opcodes import LoadSpec, Opcode
from repro.lang.parser import parse
from repro.lang.sema import analyze
from tests.conftest import output_of, run_c


def ir_for(source):
    unit = parse(source)
    return generate_ir(unit, analyze(unit))


def ops(module, name="main"):
    return [i.opcode for i in module.funcs[name].func.instructions()]


def test_too_many_int_arguments_rejected():
    src = """
    int f(int a, int b, int c, int d, int e, int f2, int g) { return a; }
    int main() { return f(1,2,3,4,5,6,7); }
    """
    with pytest.raises(IRGenError):
        ir_for(src)


def test_void_call_as_value_rejected():
    src = """
    void f() {}
    int main() { return f() + 1; }
    """
    from repro.lang.errors import SemaError

    # sema catches this first (void in arithmetic)
    with pytest.raises((IRGenError, SemaError)):
        output_of(src)


def test_global_scalar_uses_absolute_addressing():
    module = ir_for("int g = 3; int main() { return g; }")
    loads = [
        i for i in module.funcs["main"].func.instructions() if i.is_load
    ]
    assert len(loads) == 1
    assert isinstance(loads[0].mem_disp, Sym)
    assert loads[0].is_absolute


def test_string_literals_are_interned():
    module = ir_for(
        """
        int main() {
            char *a = "same";
            char *b = "same";
            char *c = "different";
            return a[0] + b[0] + c[0];
        }
        """
    )
    strings = [
        item
        for name, item in module.program.data.items()
        if name.startswith("__str")
    ]
    assert len(strings) == 2  # "same" interned once


def test_float_constants_pooled():
    module = ir_for(
        """
        int main() {
            double a = 2.5;
            double b = 2.5;
            double c = 3.5;
            return (int) (a + b + c);
        }
        """
    )
    consts = [
        name for name in module.program.data if name.startswith("__fc")
    ]
    assert len(consts) == 2


def test_heap_pointer_global_exists():
    module = ir_for("int main() { return 0; }")
    assert "__heap_ptr" in module.program.data


def test_malloc_is_inlined_bump_allocation():
    module = ir_for(
        "int main() { int *p = (int *) malloc(12); return *p; }"
    )
    body_ops = ops(module)
    assert Opcode.CALL not in body_ops  # no runtime call
    # bump pattern: load heap ptr, add, store back
    assert Opcode.LD in body_ops
    assert Opcode.ST in body_ops


def test_malloc_alignment_rounds_to_eight():
    assert output_of(
        """
        int main() {
            int *a = (int *) malloc(5);
            int *b = (int *) malloc(5);
            print_int(((int) b - (int) a));
            return 0;
        }
        """
    ) == [8]


def test_division_uses_div_opcode():
    module = ir_for("int main() { int a = 10; return a / 3; }")
    assert Opcode.DIV in ops(module)


def test_pointer_scaling_power_of_two_uses_shift():
    module = ir_for(
        """
        int main() {
            int a[8];
            int i = 3;
            return a[i];
        }
        """
    )
    body_ops = ops(module)
    assert Opcode.SLL in body_ops
    assert Opcode.MUL not in body_ops


def test_struct_size_scaling_uses_mul_when_odd():
    module = ir_for(
        """
        struct odd { int a; int b; int c; };
        struct odd arr[4];
        int main() { int i = 1; return arr[i].b; }
        """
    )
    assert Opcode.MUL in ops(module)


def test_constant_index_folds_to_offset():
    module = ir_for(
        """
        int arr[8];
        int main() { return arr[3]; }
        """
    )
    loads = [
        i for i in module.funcs["main"].func.instructions() if i.is_load
    ]
    assert any(
        isinstance(i.mem_disp, Imm) and i.mem_disp.value == 12
        for i in loads
    )


def test_loads_default_to_ld_n():
    module = ir_for("int g; int main() { return g; }")
    loads = [
        i for i in module.funcs["main"].func.instructions() if i.is_load
    ]
    assert all(i.lspec is LoadSpec.N for i in loads)


def test_comma_free_multi_decl_initializers_run():
    assert output_of(
        "int main() { int a = 1, b = a + 1, c = b * 2; "
        "print_int(a + b + c); return 0; }"
    ) == [7]


def test_negative_offsets_work():
    assert output_of(
        """
        int arr[8];
        int main() {
            int *p = &arr[4];
            p[-1] = 7;
            print_int(arr[3]);
            print_int(*(p - 1));
            return 0;
        }
        """
    ) == [7, 7]


def test_char_pointer_walk():
    res = run_c(
        """
        char msg[6] = "hello";
        int main() {
            char *p = msg;
            int n = 0;
            while (*p) { print_char(*p); p++; n++; }
            print_int(n);
            return 0;
        }
        """
    )
    assert res.text == "hello"
    assert res.output == [5]


def test_ternary_with_doubles():
    assert output_of(
        """
        int main() {
            double d = 1.0 > 2.0 ? 5.5 : 6.5;
            print_int((int) d);
            return 0;
        }
        """
    ) == [6]


def test_deeply_nested_calls():
    assert output_of(
        """
        int inc(int x) { return x + 1; }
        int main() {
            print_int(inc(inc(inc(inc(0)))));
            return 0;
        }
        """
    ) == [4]


def test_call_argument_evaluation_order_is_safe():
    # nested calls in arguments must not clobber argument registers
    assert output_of(
        """
        int add(int a, int b) { return a + b; }
        int main() {
            print_int(add(add(1, 2), add(3, add(4, 5))));
            return 0;
        }
        """,
        inline=False,
    ) == [15]
