"""Section 4 load-classification tests, including Figure 4."""

from repro.compiler.classify import class_counts, compute_s_load
from repro.compiler.driver import compile_source
from repro.isa import Imm, Instruction, LoadSpec, Opcode, Reg
from repro.sim.executor import execute


def classified_loads(source, **kwargs):
    """Map each load (repr of base+disp) to its specifier per function."""
    result = compile_source(source, **kwargs)
    return result


def loads_of(result, func="main"):
    return [
        inst
        for inst in result.program.functions[func].instructions()
        if inst.is_load
    ]


class TestSLoad:
    def test_load_dests_seed_the_set(self):
        instrs = [
            Instruction(Opcode.LD, Reg(1), [Reg(9), Imm(0)]),
        ]
        assert compute_s_load(instrs) == {Reg(1).key}

    def test_arithmetic_propagation(self):
        instrs = [
            Instruction(Opcode.LD, Reg(1), [Reg(9), Imm(0)]),
            Instruction(Opcode.SLL, Reg(2), [Reg(1), Imm(2)]),
            Instruction(Opcode.ADD, Reg(3), [Reg(2), Reg(8)]),
            Instruction(Opcode.ADD, Reg(4), [Reg(8), Imm(1)]),
        ]
        s = compute_s_load(instrs)
        assert Reg(2).key in s  # derived from load via SLL
        assert Reg(3).key in s  # transitively
        assert Reg(4).key not in s  # pure arithmetic on a non-load value

    def test_fixed_point_order_independence(self):
        # use-before-def within the region still converges
        instrs = [
            Instruction(Opcode.ADD, Reg(3), [Reg(2), Imm(0)]),
            Instruction(Opcode.SLL, Reg(2), [Reg(1), Imm(2)]),
            Instruction(Opcode.LD, Reg(1), [Reg(9), Imm(0)]),
        ]
        s = compute_s_load(instrs)
        assert Reg(3).key in s


class TestFigure4:
    """The paper's worked examples compile to the paper's classes."""

    FOR_LOOP = """
    int arr1[128];
    int arr2[128];
    int ind[128];
    int main() {
        int i; int s = 0;
        for (i = 0; i < 128; i++) {
            s += arr1[ind[i]];
            s += arr2[i];
        }
        print_int(s);
        return 0;
    }
    """

    def test_for_loop_classes(self):
        """Figure 4a/4b: ind[i] and arr2[i] are ld_p; arr1[ind[i]] uses
        register+register addressing off a loaded index, hence ld_n."""
        result = classified_loads(self.FOR_LOOP)
        execute(result.program)  # sanity: it runs
        loop_loads = [
            inst
            for inst in loads_of(result)
            if not (inst.mem_base.index == 62 and not inst.mem_base.virtual)
        ]
        specs = sorted(inst.lspec.value for inst in loop_loads)
        # the indirection load is ld_n, the two strided streams ld_p —
        # exactly the paper's op1/op3/op4 classification
        assert specs == ["n", "p", "p"]

    WHILE_LOOP = """
    struct node { int f1; int f2; struct node *next; };
    struct node *head;
    int main() {
        struct node *p;
        int i; int s = 0;
        for (i = 0; i < 32; i++) {
            struct node *n = (struct node *) malloc(sizeof(struct node));
            n->f1 = i; n->f2 = 2 * i; n->next = head;
            head = n;
        }
        p = head;
        while (p) {
            s += p->f1;
            s += p->f2;
            p = p->next;
        }
        print_int(s);
        return 0;
    }
    """

    def test_while_loop_classes(self):
        """Figure 4c/4d: all three pointer-chase loads share base p and
        win R_addr: ld_e, ld_e, ld_e."""
        result = classified_loads(self.WHILE_LOOP)
        out = execute(result.program)
        assert out.output == [sum(i + 2 * i for i in range(32))]
        listing = result.program.functions["main"].dump()
        assert listing.count("ld_e") >= 3

    def test_paper_example_shapes_together(self):
        """Both loops in one program keep their own classifications."""
        src = self.FOR_LOOP.replace("int main() {", "int run_for() {").replace(
            "print_int(s);\n        return 0;", "return s;"
        )
        src += self.WHILE_LOOP.replace(
            "int main() {", "int main() { print_int(run_for());"
        )
        result = classified_loads(src)
        counts = class_counts(result.program)
        assert counts["e"] >= 3
        assert counts["p"] >= 2
        assert counts["n"] >= 1


class TestCyclicHeuristics:
    def test_strided_global_scan_is_pd(self):
        result = classified_loads(
            """
            int data[64];
            int main() {
                int i; int s = 0;
                for (i = 0; i < 64; i++) { s += data[i]; }
                print_int(s);
                return 0;
            }
            """
        )
        loop_loads = [
            inst for inst in loads_of(result) if inst.mem_base.index != 62
        ]
        assert all(i.lspec is LoadSpec.P for i in loop_loads)

    def test_largest_pointer_group_wins_raddr(self):
        result = classified_loads(
            """
            struct big { int a; int b; int c; struct big *n; };
            struct big *h1;
            int *h2;
            int main() {
                struct big *p; int s = 0;
                int i;
                for (i = 0; i < 8; i++) {
                    struct big *n = (struct big *) malloc(sizeof(struct big));
                    n->a = i; n->b = i; n->c = i; n->n = h1; h1 = n;
                }
                h2 = (int *) malloc(64);
                p = h1;
                while (p) {
                    s += p->a + p->b + p->c;   /* group of 4 with ->n */
                    s += h2[s & 7];            /* reg+reg: ld_n */
                    p = p->n;
                }
                print_int(s);
                return 0;
            }
            """
        )
        execute(result.program)
        listing = result.program.functions["main"].dump()
        assert listing.count("ld_e") >= 4

    def test_unoptimized_classification_degenerates(self):
        """The paper's observation: without the classical optimizations
        nearly every load is load-dependent and the classes are useless."""
        src = """
        int data[64];
        int main() {
            int i; int s = 0;
            for (i = 0; i < 64; i++) { s += data[i]; }
            print_int(s);
            return 0;
        }
        """
        optimized = compile_source(src).class_counts()
        naive = compile_source(src, opt_level=0).class_counts()
        # optimized: the single surviving load is the strided array scan,
        # correctly ld_p.  Naive: every scalar lives in memory, the array
        # index itself is loaded, and the hot array access degenerates to
        # load-dependent ld_n.
        assert optimized == {"n": 0, "p": 1, "e": 0}
        assert naive["n"] >= 1
        assert sum(naive.values()) > sum(optimized.values())


class TestAcyclicHeuristics:
    def test_absolute_loads_are_pd(self):
        result = classified_loads(
            """
            int g1 = 1;
            int g2 = 2;
            int main() {
                print_int(g1 + g2);
                return 0;
            }
            """
        )
        absolute = [i for i in loads_of(result) if i.is_absolute]
        assert absolute
        assert all(i.lspec is LoadSpec.P for i in absolute)

    def test_acyclic_group_gets_ld_e(self):
        result = classified_loads(
            """
            struct cfg { int a; int b; int c; };
            struct cfg *make() {
                struct cfg *c = (struct cfg *) malloc(sizeof(struct cfg));
                c->a = 1; c->b = 2; c->c = 3;
                return c;
            }
            int main() {
                struct cfg *c = make();
                print_int(c->a + c->b + c->c);
                return 0;
            }
            """,
            inline=False,
        )
        loads = loads_of(result)
        e_loads = [i for i in loads if i.lspec is LoadSpec.E]
        assert len(e_loads) >= 3  # the c-> group wins R_addr


class TestLateLoads:
    def test_spill_and_restore_loads_classified(self):
        # a function with many live values forces callee-saved restores
        decls = "\n".join(f"int g{i} = {i};" for i in range(40))
        uses = " + ".join(f"g{i}" for i in range(40))
        stores = "\n".join(f"g{i} = g{i} + 1;" for i in range(40))
        src = f"""
        {decls}
        int touch() {{ return 1; }}
        int main() {{
            int a = {uses};
            touch();
            {stores}
            print_int(a + {uses});
            return 0;
        }}
        """
        result = compile_source(src, inline=False)
        execute(result.program)
        main_loads = loads_of(result)
        sp_loads = [
            i
            for i in main_loads
            if not i.mem_base.virtual and i.mem_base.index == 62
        ]
        assert sp_loads  # epilogue restores exist
        # and they carry a deliberate class (E or N per group size), with
        # in-loop reloads P; none left accidentally unclassified is not
        # checkable directly, but every load has *a* specifier:
        assert all(i.lspec in LoadSpec for i in main_loads)
