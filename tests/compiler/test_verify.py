"""Structural IR verifier: every invariant class, plus driver wiring."""

import pytest

from repro.compiler.driver import CompileOptions, compile_source
from repro.compiler.verify import verify_func, verify_program
from repro.errors import IRVerificationError
from repro.isa import (
    Function,
    Imm,
    Instruction,
    Label,
    Opcode,
    Program,
    Reg,
    Sym,
)
from repro.isa.opcodes import LoadSpec


def I(op, dest=None, srcs=(), target=None, lspec=LoadSpec.N):  # noqa: E743
    return Instruction(op, dest, srcs, target, lspec=lspec)


def func_of(items, name="main"):
    f = Function(name)
    for item in items:
        f.append(item)
    return f


def v(index):
    return Reg(index, virtual=True)


HALT = I(Opcode.HALT)


# -- well-formed inputs ----------------------------------------------------

def test_minimal_function_verifies():
    verify_func(func_of([HALT]))


def test_straightline_virtual_code_verifies():
    verify_func(
        func_of(
            [
                I(Opcode.MOV, v(1), [Imm(4)]),
                I(Opcode.ADD, v(2), [v(1), Imm(1)]),
                I(Opcode.OUT, None, [v(2)]),
                HALT,
            ]
        )
    )


def test_compiled_workload_verifies_at_every_stage():
    source = """
    int main() {
        int i;
        int s;
        s = 0;
        for (i = 0; i < 10; i = i + 1) { s = s + i; }
        print_int(s);
        return 0;
    }
    """
    result = compile_source(source, options=CompileOptions(verify=True))
    verify_program(result.program, require_physical=True)


# -- branch/CFG invariants -------------------------------------------------

def test_branch_to_undefined_label():
    func = func_of(
        [
            I(Opcode.BEQ, None, [Imm(0), Imm(0)], target="nowhere"),
            HALT,
        ]
    )
    with pytest.raises(IRVerificationError, match="undefined label"):
        verify_func(func)


def test_branch_to_local_label_is_legal():
    func = func_of(
        [
            I(Opcode.BEQ, None, [Imm(0), Imm(0)], target="L1"),
            Label("L1"),
            HALT,
        ]
    )
    verify_func(func)


def test_call_to_unknown_function():
    func = func_of([I(Opcode.CALL, target="ghost"), HALT])
    with pytest.raises(IRVerificationError, match="unknown function"):
        verify_func(func, known_funcs={"main"})


def test_call_unchecked_without_known_funcs():
    verify_func(func_of([I(Opcode.CALL, target="ghost"), HALT]))


# -- terminator placement --------------------------------------------------

def test_missing_terminator():
    func = func_of([I(Opcode.MOV, v(1), [Imm(1)])])
    with pytest.raises(IRVerificationError, match="falls off the end"):
        verify_func(func)


def test_empty_function():
    with pytest.raises(IRVerificationError, match="no instructions"):
        verify_func(func_of([]))


def test_ret_terminator_is_legal():
    verify_func(func_of([I(Opcode.RET)]))


# -- def-before-use --------------------------------------------------------

def test_use_of_undefined_virtual_register():
    func = func_of(
        [
            I(Opcode.ADD, v(2), [v(1), Imm(1)]),
            HALT,
        ]
    )
    with pytest.raises(
        IRVerificationError, match="possibly-undefined virtual register"
    ):
        verify_func(func)


def test_def_on_only_one_path_is_rejected():
    func = func_of(
        [
            I(Opcode.BEQ, None, [Imm(0), Imm(1)], target="join"),
            I(Opcode.MOV, v(1), [Imm(7)]),
            Label("join"),
            I(Opcode.OUT, None, [v(1)]),
            HALT,
        ]
    )
    with pytest.raises(
        IRVerificationError, match="possibly-undefined virtual register"
    ):
        verify_func(func)


def test_def_on_both_paths_is_accepted():
    func = func_of(
        [
            I(Opcode.BEQ, None, [Imm(0), Imm(1)], target="other"),
            I(Opcode.MOV, v(1), [Imm(7)]),
            I(Opcode.JMP, target="join"),
            Label("other"),
            I(Opcode.MOV, v(1), [Imm(8)]),
            Label("join"),
            I(Opcode.OUT, None, [v(1)]),
            HALT,
        ]
    )
    verify_func(func)


def test_physical_registers_exempt_from_def_before_use():
    # The ABI defines physical registers at entry (args, sp, ra).
    verify_func(
        func_of(
            [
                I(Opcode.ADD, v(1), [Reg(4), Imm(1)]),
                I(Opcode.OUT, None, [v(1)]),
                HALT,
            ]
        )
    )


def test_loop_carried_def_is_accepted():
    # v1 defined before the loop; redefinition inside keeps it defined.
    func = func_of(
        [
            I(Opcode.MOV, v(1), [Imm(0)]),
            Label("loop"),
            I(Opcode.ADD, v(1), [v(1), Imm(1)]),
            I(Opcode.BLT, None, [v(1), Imm(10)], target="loop"),
            HALT,
        ]
    )
    verify_func(func)


# -- operand-kind legality -------------------------------------------------

def test_fp_binop_rejects_immediate_source():
    func = func_of(
        [
            I(Opcode.FADD, Reg(1, bank="fp"), [Reg(2, bank="fp"), Imm(1)]),
            HALT,
        ]
    )
    with pytest.raises(IRVerificationError, match="FP registers"):
        verify_func(func)


def test_int_binop_rejects_fp_source():
    func = func_of(
        [
            I(Opcode.ADD, Reg(1), [Reg(2, bank="fp"), Imm(1)]),
            HALT,
        ]
    )
    with pytest.raises(IRVerificationError, match="integer registers"):
        verify_func(func)


def test_load_base_must_be_register():
    func = func_of(
        [
            I(Opcode.LD, Reg(1), [Imm(100), Imm(0)]),
            HALT,
        ]
    )
    with pytest.raises(IRVerificationError, match="base must be"):
        verify_func(func)


def test_store_must_not_have_destination():
    func = func_of(
        [
            I(Opcode.ST, Reg(1), [Reg(2), Reg(3), Imm(0)]),
            HALT,
        ]
    )
    with pytest.raises(IRVerificationError, match="must not have a dest"):
        verify_func(func)


def test_wrong_arity():
    func = func_of(
        [
            I(Opcode.ADD, Reg(1), [Reg(2)]),
            HALT,
        ]
    )
    with pytest.raises(IRVerificationError, match="expects 2"):
        verify_func(func)


def test_branch_without_target():
    func = func_of(
        [
            I(Opcode.BEQ, None, [Imm(0), Imm(0)]),
            HALT,
        ]
    )
    with pytest.raises(IRVerificationError, match="must have a target"):
        verify_func(func)


# -- load-spec validity ----------------------------------------------------

def test_ld_e_requires_base_offset_addressing():
    # base+index (register displacement) cannot use the E scheme.
    func = func_of(
        [
            I(Opcode.MOV, v(1), [Imm(0)]),
            I(Opcode.MOV, v(2), [Imm(0)]),
            I(Opcode.LD, v(3), [v(1), v(2)], lspec=LoadSpec.E),
            HALT,
        ]
    )
    with pytest.raises(IRVerificationError, match="base\\+offset"):
        verify_func(func)


def test_ld_e_with_immediate_offset_is_legal():
    func = func_of(
        [
            I(Opcode.MOV, v(1), [Imm(0)]),
            I(Opcode.LD, v(2), [v(1), Imm(8)], lspec=LoadSpec.E),
            HALT,
        ]
    )
    verify_func(func)


def test_non_load_must_not_carry_spec():
    func = func_of(
        [
            I(Opcode.ADD, v(1), [Imm(1), Imm(2)], lspec=LoadSpec.P),
            HALT,
        ]
    )
    with pytest.raises(IRVerificationError, match="non-load carries"):
        verify_func(func)


# -- post-regalloc mode ----------------------------------------------------

def test_require_physical_rejects_virtual_registers():
    func = func_of(
        [
            I(Opcode.MOV, v(1), [Imm(1)]),
            HALT,
        ]
    )
    with pytest.raises(IRVerificationError, match="survives register"):
        verify_func(func, require_physical=True)


# -- diagnostics -----------------------------------------------------------

def test_diagnostic_names_pass_function_and_instruction():
    func = func_of(
        [
            I(Opcode.ADD, v(2), [v(1), Imm(1)]),
            HALT,
        ],
        name="hot_loop",
    )
    with pytest.raises(IRVerificationError) as info:
        verify_func(func, pass_name="strength_reduction")
    err = info.value
    assert err.pass_name == "strength_reduction"
    assert err.func_name == "hot_loop"
    assert "strength_reduction" in str(err)
    assert "inst=" in str(err)


def test_driver_verification_catches_corrupted_pass_output():
    # Simulate a miscompiling pass through the driver's post-pass hook:
    # the verifier must pin the failure on that pass by name.
    def corrupt(pass_name, fir):
        if pass_name == "constant_propagation" and not corrupt.done:
            corrupt.done = True
            fir.func.body.insert(
                0,
                Instruction(
                    Opcode.ADD,
                    Reg(0x7_0001, virtual=True),
                    [Reg(0x7_0000, virtual=True), Imm(1)],
                ),
            )

    corrupt.done = False
    source = "int main() { print_int(2 + 3); return 0; }"
    with pytest.raises(IRVerificationError) as info:
        compile_source(
            source,
            options=CompileOptions(verify=True, post_pass_hook=corrupt),
        )
    assert info.value.pass_name == "constant_propagation"
    assert corrupt.done
