"""Per-pass optimization tests.

Each test checks both the *transformation* (code shape) and, through the
shared oracle in test_exec_language, functional preservation.
"""

from repro.compiler.driver import compile_source
from repro.compiler.opt import (
    coalesce_moves,
    constant_propagation,
    copy_propagation,
    dead_code_elimination,
    promote_locals,
    redundant_load_elimination,
    simplify_control_flow,
)
from repro.compiler.ir import FuncIR, ModuleIR
from repro.compiler.irgen import generate_ir
from repro.isa.opcodes import Opcode
from repro.lang.parser import parse
from repro.lang.sema import analyze
from tests.conftest import output_of


def ir_for(source):
    unit = parse(source)
    analyzer = analyze(unit)
    return generate_ir(unit, analyzer)


def ops_of(fir):
    return [inst.opcode for inst in fir.func.instructions()]


def count_op(fir, op):
    return sum(1 for o in ops_of(fir) if o is op)


SIMPLE = """
int main() {
    int a = 2;
    int b = a + 3;
    int c = b * 4;
    print_int(c);
    return 0;
}
"""


class TestMem2Reg:
    def test_promotes_scalars(self):
        module = ir_for(SIMPLE)
        fir = module.funcs["main"]
        loads_before = count_op(fir, Opcode.LD)
        assert loads_before > 0
        assert promote_locals(fir)
        assert count_op(fir, Opcode.LD) == 0
        assert count_op(fir, Opcode.ST) == 0

    def test_addr_taken_not_promoted(self):
        module = ir_for(
            """
            int main() {
                int x = 1;
                int *p = &x;
                *p = 5;
                print_int(x);
                return 0;
            }
            """
        )
        fir = module.funcs["main"]
        promote_locals(fir)
        # x stays in memory; p is promoted
        assert count_op(fir, Opcode.LD) >= 1
        slots = {s.name: s for s in fir.slots}
        assert not slots["x"].promotable
        assert slots["p"].promotable

    def test_arrays_not_promoted(self):
        module = ir_for(
            "int main() { int a[4]; a[0] = 1; print_int(a[0]); return 0; }"
        )
        fir = module.funcs["main"]
        promote_locals(fir)
        assert count_op(fir, Opcode.LD) >= 1

    def test_char_promotion_preserves_narrowing(self):
        assert output_of(
            "int main() { char c = 300; print_int(c); return 0; }"
        ) == [44]

    def test_without_mem2reg_output_unchanged(self):
        # the oracle: naive and promoted code agree
        assert output_of(SIMPLE, opt_level=0) == output_of(SIMPLE)


class TestConstProp:
    def test_folds_chain_to_constant(self):
        module = ir_for(SIMPLE)
        fir = module.funcs["main"]
        promote_locals(fir)
        changed = True
        while changed:
            changed = constant_propagation(fir)
            changed |= copy_propagation(fir)
            changed |= dead_code_elimination(fir)
        # c = (2+3)*4 folds entirely: a MOV of 20 feeds OUT
        movs = [
            inst
            for inst in fir.func.instructions()
            if inst.opcode is Opcode.MOV
        ]
        from repro.isa.instruction import Imm

        assert any(
            isinstance(m.srcs[0], Imm) and m.srcs[0].value == 20
            for m in movs
        )
        assert count_op(fir, Opcode.ADD) == 0
        assert count_op(fir, Opcode.MUL) == 0

    def test_branch_folding_removes_dead_arm(self):
        src = """
        int main() {
            if (1 < 2) { print_int(10); } else { print_int(20); }
            return 0;
        }
        """
        result = compile_source(src)
        # the dead arm's constant should be gone from the final code
        from repro.isa.instruction import Imm

        values = [
            s.value
            for f in result.program.functions.values()
            for inst in f.instructions()
            for s in inst.srcs
            if isinstance(s, Imm)
        ]
        assert 20 not in values
        assert output_of(src) == [10]

    def test_merge_point_not_folded(self):
        # x differs along the two paths: must not be treated as constant
        assert output_of(
            """
            int main() {
                int x;
                if (lcg_like()) { x = 1; } else { x = 2; }
                print_int(x + 10);
                return 0;
            }
            int lcg_like() { return 0; }
            """
        ) == [12]


class TestCopyPropAndCoalesce:
    def test_copy_chain_collapsed(self):
        module = ir_for(
            """
            int main() {
                int a = 5;
                int b = a;
                int c = b;
                print_int(c);
                return 0;
            }
            """
        )
        fir = module.funcs["main"]
        promote_locals(fir)
        for _ in range(3):
            constant_propagation(fir)
            copy_propagation(fir)
            coalesce_moves(fir)
            dead_code_elimination(fir)
        # everything collapses to printing the constant (the surviving
        # MOVs are the OUT operand and the return-value setup)
        assert count_op(fir, Opcode.MOV) <= 2

    def test_coalesce_restores_iv_shape(self):
        module = ir_for(
            """
            int main() {
                int i = 0;
                while (i < 10) { i = i + 1; }
                print_int(i);
                return 0;
            }
            """
        )
        fir = module.funcs["main"]
        promote_locals(fir)
        for _ in range(3):
            if not (
                copy_propagation(fir)
                | coalesce_moves(fir)
                | dead_code_elimination(fir)
            ):
                break
        adds = [
            inst
            for inst in fir.func.instructions()
            if inst.opcode is Opcode.ADD
        ]
        # i = i + 1 with matching dest/src register (the IV shape)
        assert any(
            inst.dest is not None
            and inst.srcs
            and getattr(inst.srcs[0], "key", None) == inst.dest.key
            for inst in adds
        )


class TestRedundantLoad:
    def test_second_load_becomes_move(self):
        module = ir_for(
            """
            int g;
            int main() {
                int a = g;
                int b = g;     /* redundant */
                print_int(a + b);
                return 0;
            }
            """
        )
        fir = module.funcs["main"]
        promote_locals(fir)
        before = count_op(fir, Opcode.LD)
        assert redundant_load_elimination(fir)
        dead_code_elimination(fir)
        assert count_op(fir, Opcode.LD) < before

    def test_store_kills_availability(self):
        assert output_of(
            """
            int g = 1;
            int main() {
                int a = g;
                g = 99;
                int b = g;   /* must reload */
                print_int(a);
                print_int(b);
                return 0;
            }
            """
        ) == [1, 99]

    def test_store_to_load_forwarding(self):
        module = ir_for(
            """
            int g;
            int main() {
                g = 42;
                print_int(g);   /* forwarded from the store */
                return 0;
            }
            """
        )
        fir = module.funcs["main"]
        promote_locals(fir)
        redundant_load_elimination(fir)
        dead_code_elimination(fir)
        assert count_op(fir, Opcode.LD) == 0

    def test_different_globals_do_not_alias(self):
        assert output_of(
            """
            int a = 1; int b = 2;
            int main() {
                int x = a;
                b = 99;          /* does not invalidate a */
                int y = a;
                print_int(x + y);
                return 0;
            }
            """
        ) == [2]

    def test_unknown_pointer_store_kills(self):
        assert output_of(
            """
            int g = 5;
            int main() {
                int *p = &g;
                int x = g;
                *p = 7;
                int y = g;
                print_int(x); print_int(y);
                return 0;
            }
            """
        ) == [5, 7]


class TestSimplify:
    def test_branch_inversion_tightens_loops(self):
        result = compile_source(
            """
            int main() {
                int i; int s = 0;
                for (i = 0; i < 100; i++) { s += i; }
                print_int(s);
                return 0;
            }
            """
        )
        main = result.program.functions["main"]
        jmps = sum(1 for i in main.instructions() if i.opcode is Opcode.JMP)
        # rotated + inverted loop needs no unconditional jump at all
        assert jmps == 0

    def test_unreachable_after_return_dropped(self):
        result = compile_source(
            """
            int main() {
                print_int(1);
                return 0;
                print_int(2);
            }
            """
        )
        from repro.isa.instruction import Imm

        values = [
            s.value
            for inst in result.program.functions["main"].instructions()
            for s in inst.srcs
            if isinstance(s, Imm)
        ]
        assert 2 not in values


class TestDce:
    def test_dead_computation_removed(self):
        module = ir_for(
            """
            int main() {
                int unused = 12345;
                print_int(7);
                return 0;
            }
            """
        )
        fir = module.funcs["main"]
        promote_locals(fir)
        dead_code_elimination(fir)
        from repro.isa.instruction import Imm

        values = [
            s.value
            for inst in fir.func.instructions()
            for s in inst.srcs
            if isinstance(s, Imm)
        ]
        assert 12345 not in values

    def test_stores_never_removed(self):
        module = ir_for(
            "int g; int main() { g = 1; return 0; }"
        )
        fir = module.funcs["main"]
        promote_locals(fir)
        dead_code_elimination(fir)
        assert count_op(fir, Opcode.ST) == 1
