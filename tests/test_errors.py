"""The shared error hierarchy: context capture and rendering."""

import pytest

from repro.errors import (
    EmulationError,
    IRVerificationError,
    InjectedFault,
    OutputMismatchError,
    ReproError,
    SimulationHang,
    StepLimitExceeded,
)


def test_plain_message_renders_without_brackets():
    assert str(ReproError("boom")) == "boom"


def test_context_renders_in_brackets():
    err = ReproError("boom", workload="022.li", pc=12)
    assert str(err) == "boom [pc=12, workload=022.li]"
    assert err.workload == "022.li"
    assert err.pc == 12


def test_none_context_values_are_dropped():
    err = ReproError("boom", workload=None, pass_name="licm")
    assert err.workload is None
    assert "workload" not in err.context
    assert err.pass_name == "licm"


def test_add_context_after_raise():
    err = ReproError("boom")
    err.add_context(workload="129.compress")
    assert err.workload == "129.compress"
    assert "129.compress" in str(err)


def test_hierarchy():
    assert issubclass(EmulationError, ReproError)
    assert issubclass(StepLimitExceeded, EmulationError)
    assert issubclass(SimulationHang, ReproError)
    assert issubclass(IRVerificationError, ReproError)
    assert issubclass(OutputMismatchError, ReproError)
    assert issubclass(InjectedFault, ReproError)


def test_step_limit_attributes():
    err = StepLimitExceeded(1000, last_pc=42, steps=1000)
    assert err.limit == 1000
    assert err.last_pc == 42
    assert err.steps == 1000
    assert "1000" in str(err)


def test_simulation_hang_carries_dump():
    dump = {"cycle": 99, "uid": 7}
    err = SimulationHang("stuck", dump=dump)
    assert err.dump == dump
    assert "pipeline state" in str(err)
    assert "cycle" in str(err)


def test_ir_verification_error_names_pass_and_func():
    err = IRVerificationError("bad", func="main", pass_name="licm")
    assert err.func_name == "main"
    assert err.pass_name == "licm"
    assert "licm" in str(err)


def test_errors_are_catchable_as_repro_error():
    with pytest.raises(ReproError):
        raise StepLimitExceeded(1, last_pc=0, steps=1)
    with pytest.raises(ReproError):
        raise InjectedFault("injected crash", workload="x")
