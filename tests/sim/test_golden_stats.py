"""Golden-stats lock: the timing simulator must reproduce the recorded
seed SimStats — cycles, stalls, speculation and forwarding counters —
exactly, on every example program under every recorded machine variant.

The snapshot was generated from the pre-fast-path seed simulator; see
``golden_cases.py`` for the case list and regeneration instructions.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from golden_cases import GOLDEN_PATH, iter_cases, run_case  # noqa: E402


def _load_golden():
    with GOLDEN_PATH.open(encoding="utf-8") as fh:
        return json.load(fh)["cases"]


def test_simulator_reproduces_golden_stats_exactly():
    golden = _load_golden()
    seen = set()
    failures = []
    for case_id, trace, machine, overrides, collect_timeline in iter_cases():
        seen.add(case_id)
        assert case_id in golden, f"case {case_id} missing from snapshot"
        actual = run_case(trace, machine, overrides, collect_timeline)
        expected = golden[case_id]
        if actual != expected:
            diffs = [
                f"{key}: expected {expected[key]!r} got {actual.get(key)!r}"
                for key in expected
                if actual.get(key) != expected[key]
            ]
            failures.append(f"{case_id}:\n    " + "\n    ".join(diffs))
    assert not failures, (
        "SimStats drifted from the recorded seed snapshot:\n"
        + "\n".join(failures)
    )
    assert seen == set(golden), (
        f"case list drifted: snapshot-only={set(golden) - seen}, "
        f"code-only={seen - set(golden)}"
    )


def test_golden_snapshot_covers_every_example():
    examples = {
        p.stem
        for p in (Path(__file__).resolve().parents[2] / "examples").glob(
            "*.py"
        )
    }
    golden_programs = {case.split("/")[0] for case in _load_golden()}
    # embedded_design drives the ghostscript workload; assembly_debug
    # contributes its two hand-written kernels.
    represented = {
        "quickstart": "quickstart",
        "pointer_chasing": "pointer_chasing",
        "strided_prediction": "strided_prediction",
        "profile_guided": "profile_guided",
        "embedded_design": "ghostscript",
        "assembly_debug": "asm_strided",
    }
    assert set(represented) == examples, (
        "examples/ changed; update golden_cases.py and this mapping"
    )
    for example, program in represented.items():
        assert program in golden_programs, (
            f"example {example} has no golden case ({program} missing)"
        )
    assert {"asm_chase"} <= golden_programs
