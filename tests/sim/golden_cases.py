"""Shared construction of the golden-SimStats cases.

The golden-stats test locks the timing simulator cycle-for-cycle against
a recorded snapshot: every program from ``examples/`` is replayed under a
spread of early-generation configs and machine variants, and the full
:class:`~repro.sim.stats.SimStats` counter set must match the JSON
recorded by ``gen_golden_stats.py`` exactly.

The snapshot (``golden_stats.json``) was generated with the seed
simulator *before* the fast-path restructuring of
``TimingSimulator.run``, so any cycle-accounting drift introduced by a
later rewrite fails the test.  Regenerate only when the simulated
*architecture* intentionally changes:

    PYTHONPATH=src python tests/sim/gen_golden_stats.py
"""

from __future__ import annotations

import importlib.util
import sys
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

from repro.compiler.driver import compile_source
from repro.compiler.profile_feedback import profile_overrides
from repro.isa import parse_asm
from repro.sim.executor import Executor, execute
from repro.sim.machine import (
    CacheConfig,
    EarlyGenConfig,
    MachineConfig,
    SelectionMode,
)
from repro.sim.pipeline import TimingSimulator
from repro.workloads import get_workload

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
GOLDEN_PATH = Path(__file__).resolve().parent / "golden_stats.json"

_CC = SelectionMode.COMPILER
_HW = SelectionMode.HARDWARE

#: The standard early-generation sweep (small traces get all of it).
FULL_CONFIGS = (
    ("base", EarlyGenConfig(0, 0)),
    ("t256_r1_cc", EarlyGenConfig(256, 1, _CC)),
    ("t1024_hw", EarlyGenConfig(1024, 0, _HW)),
    ("t64_cc", EarlyGenConfig(64, 0, _CC)),
    ("r1_cc", EarlyGenConfig(0, 1, _CC)),
    ("t16_r2_hw", EarlyGenConfig(16, 2, _HW)),
    ("t64_conf2_hw", EarlyGenConfig(64, 0, _HW, table_confidence_bits=2)),
)


def _example_module(name: str):
    """Import an ``examples/`` script without needing it on sys.path."""
    key = f"_golden_example_{name}"
    if key in sys.modules:
        return sys.modules[key]
    spec = importlib.util.spec_from_file_location(
        key, EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[key] = module
    spec.loader.exec_module(module)
    return module


def iter_cases() -> Iterator[
    Tuple[str, object, MachineConfig, Optional[Dict], bool]
]:
    """Yield ``(case_id, trace, machine, overrides, collect_timeline)``.

    Deterministic: same order and contents every run.
    """
    default = MachineConfig()

    # quickstart.py — all three load classes in one small program.
    trace = _compiled_trace(_example_module("quickstart").SOURCE)
    for name, cfg in FULL_CONFIGS:
        yield (f"quickstart/{name}", trace,
               default.with_earlygen(cfg), None, False)

    # pointer_chasing.py — the Figure 1d/4d linked-list scenario.
    trace = _compiled_trace(_example_module("pointer_chasing").SOURCE)
    for name, cfg in (
        ("base", EarlyGenConfig(0, 0)),
        ("t1024_hw", EarlyGenConfig(1024, 0, _HW)),
        ("t256_r1_cc", EarlyGenConfig(256, 1, _CC)),
        ("r1_cc", EarlyGenConfig(0, 1, _CC)),
    ):
        yield (f"pointer_chasing/{name}", trace,
               default.with_earlygen(cfg), None, False)

    # strided_prediction.py — tiny tables under stream contention.
    trace = _compiled_trace(_example_module("strided_prediction").SOURCE)
    for name, cfg in (
        ("t4_hw", EarlyGenConfig(4, 0, _HW)),
        ("t4_cc", EarlyGenConfig(4, 0, _CC)),
        ("t256_r1_cc", EarlyGenConfig(256, 1, _CC)),
    ):
        yield (f"strided_prediction/{name}", trace,
               default.with_earlygen(cfg), None, False)

    # profile_guided.py — the spec_override path.  687k dynamic
    # instructions, so exactly one config rides in the golden set.
    program, trace = _compiled_program_trace(
        _example_module("profile_guided").SOURCE
    )
    overrides = profile_overrides(program, trace)
    yield ("profile_guided/t256_r1_cc+overrides", trace,
           default.with_earlygen(EarlyGenConfig(256, 1, _CC)),
           overrides, False)

    # embedded_design.py's workload (ghostscript) at a reduced scale,
    # under machine variants: associativity, RAS, a narrow core with
    # small caches (forces dcache/icache miss accounting).
    workload = get_workload("ghostscript")
    trace = _compiled_trace(
        workload.source(max(1, workload.default_scale // 10))
    )
    proposed = EarlyGenConfig(256, 1, _CC)
    variants = (
        ("default", default),
        ("ways4", MachineConfig(
            dcache=CacheConfig(ways=4), icache=CacheConfig(ways=2))),
        ("ras8", MachineConfig(ras_entries=8)),
        ("narrow_small$", MachineConfig(
            issue_width=2, int_alus=2, mem_ports=1, fp_alus=1,
            dcache=CacheConfig(size=4 * 1024),
            icache=CacheConfig(size=4 * 1024))),
    )
    for name, machine in variants:
        yield (f"ghostscript/{name}", trace,
               machine.with_earlygen(proposed), None, False)

    # assembly_debug.py — hand-written kernels, with the timeline
    # recorder on so per-instruction issue cycles are locked too.
    asm = _example_module("assembly_debug")
    for prog_name, source in (("asm_strided", asm.STRIDED),
                              ("asm_chase", asm.CHASE)):
        trace = execute(parse_asm(source)).trace
        for name, cfg in (
            ("base", EarlyGenConfig(0, 0)),
            ("t64_cc", EarlyGenConfig(64, 0, _CC)),
            ("r1_cc", EarlyGenConfig(0, 1, _CC)),
        ):
            yield (f"{prog_name}/{name}", trace,
                   default.with_earlygen(cfg), None, True)


def _compiled_trace(source: str):
    return _compiled_program_trace(source)[1]


def _compiled_program_trace(source: str):
    result = compile_source(source)
    return result.program, Executor(result.program).run().trace


def stats_to_record(stats) -> Dict:
    """A JSON-stable dict of every SimStats counter."""
    record = asdict(stats)
    record["scheme_counts"] = dict(sorted(stats.scheme_counts.items()))
    if stats.timeline is not None:
        record["timeline"] = [list(entry) for entry in stats.timeline]
    return record


def run_case(trace, machine, overrides, collect_timeline) -> Dict:
    stats = TimingSimulator(
        trace, machine, spec_override=overrides,
        collect_timeline=collect_timeline,
    ).run()
    return stats_to_record(stats)
