"""Leaderless fixed-point scheduling (:mod:`repro.sim.replay_kernel`).

PR 10's tentpole contract: on a warm wide sweep no config runs the
scalar recording replay — the leader schedule is solved by iterated
vectorized fixed-point passes over the kernel arrays, and follower
repairs go through the batched ``(window, route)`` memo.  These tests
pin:

* the vectorized leader's schedule is *identical* (issue cycles and
  outcome codes, not just the derived stats) to
  ``_replay_recording``'s on every config of a random sweep over
  generated (``gen:``) workloads,
* a pathological round budget forces the scalar fallback, and the
  fallback still produces byte-identical stats,
* the adpcm-class short-trace profitability gate holds at the default
  thresholds,
* the ``REPRO_KERNEL_MIN_N`` / ``REPRO_KERNEL_MIN_SWEEP`` environment
  overrides apply at import and malformed values fail loudly,
* per-sweep :class:`~repro.sim.replay_kernel.PathCounters` keep sweeps
  isolated while the module aggregate preserves the legacy
  process-wide view.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.compiler.driver import compile_source
from repro.envutil import env_int
from repro.sim import precompute, replay_kernel
from repro.sim.executor import execute
from repro.sim.machine import EarlyGenConfig, MachineConfig, SelectionMode
from repro.sim.pipeline import TimingSimulator
from repro.sim.precompute import kernel_counters, simulate_many
from repro.workloads import get_workload

from golden_cases import stats_to_record

needs_numpy = pytest.mark.skipif(
    not replay_kernel.kernel_available(),
    reason="numpy not importable (or kernel disabled in the environment)",
)

_SRC = str(Path(__file__).resolve().parents[2] / "src")

#: Stream-eligible configs only (no hardware dual-path: that is
#: contractually inline, never on the kernel).
_EG_POOL = (
    EarlyGenConfig(0, 0, SelectionMode.HARDWARE),
    EarlyGenConfig(16, 0, SelectionMode.HARDWARE),
    EarlyGenConfig(64, 0, SelectionMode.HARDWARE),
    EarlyGenConfig(256, 0, SelectionMode.HARDWARE),
    EarlyGenConfig(16, 0, SelectionMode.HARDWARE, table_confidence_bits=2),
    EarlyGenConfig(0, 1, SelectionMode.COMPILER),
    EarlyGenConfig(0, 2, SelectionMode.COMPILER),
    EarlyGenConfig(64, 2, SelectionMode.COMPILER),
)


def _fresh_trace(name: str, scale: float = 0.05):
    """A fresh trace for *name* — fresh precompute, kernel state, and
    stats memo (all keyed on trace identity); program-level caches may
    persist, per-trace state may not."""
    w = get_workload(name)
    scaled = max(1, int(round(w.default_scale * scale)))
    result = compile_source(w.source(scaled))
    program = getattr(result, "program", result)
    return execute(program).trace


def _machines(indices):
    return [MachineConfig().with_earlygen(_EG_POOL[i]) for i in indices]


def _norm_schedule(T, O):
    """(issue cycles, outcome codes) in a container-independent form —
    the leader returns numpy arrays, the recording replay an
    ``array('q')`` and a ``bytearray``."""
    return [int(x) for x in T], bytes(bytearray(O))


def _sweep_schedules(trace, machines, force_fallback: bool):
    """Run a sweep with donors disabled; capture every full schedule.

    With ``force_fallback`` the fixed-point leader is disabled so every
    kernel config runs the scalar recording replay; otherwise the
    fixed-point leader must schedule every kernel config (a fallback
    fails the test).  Returns ``(stats records, schedules in call
    order)``.
    """
    calls = []
    orig_leader = replay_kernel._leader_schedule
    orig_recording = replay_kernel._replay_recording
    mp = pytest.MonkeyPatch()
    try:
        # No donors: every kernel config must produce a full schedule
        # itself, so phase call order lines up config-for-config.
        mp.setattr(replay_kernel.KernelState, "pick_donor",
                   lambda self, key, nl: None)
        if force_fallback:
            mp.setattr(replay_kernel, "_leader_schedule",
                       lambda *a, **k: None)

            def recording(*args):
                stats, ra, T, O = orig_recording(*args)
                calls.append(_norm_schedule(T, O))
                return stats, ra, T, O

            mp.setattr(replay_kernel, "_replay_recording", recording)
        else:
            def leader(pre, ka, mc, rv, dv, ev, excl, info, st=None,
                       ctr=None):
                sched = orig_leader(pre, ka, mc, rv, dv, ev, excl, info,
                                    st=st, ctr=ctr)
                assert sched is not None, (
                    "fixed-point leader fell back to the scalar replay"
                )
                calls.append(_norm_schedule(sched[0], sched[1]))
                return sched

            mp.setattr(replay_kernel, "_leader_schedule", leader)
        stats = simulate_many(trace, machines)
    finally:
        mp.undo()
    return [stats_to_record(s) for s in stats], calls


# ---------------------------------------------------------------------------
# Tentpole: the fixed-point leader IS the recording replay
# ---------------------------------------------------------------------------

@needs_numpy
@settings(max_examples=5, deadline=None)
@given(data=st.data())
def test_leader_schedule_identical_to_recording_replay(data):
    """For random generated workloads and random sweeps, the vectorized
    fixed-point leader produces the *same schedule* — per-record issue
    cycles and per-load outcome codes — as the scalar recording replay,
    for every config of the sweep."""
    alias = data.draw(st.sampled_from(
        ("strided", "pointer", "irregular", "mixed")), label="fingerprint")
    seed = data.draw(st.integers(min_value=0, max_value=31), label="seed")
    width = data.draw(st.integers(min_value=4, max_value=6), label="sweep")
    order = data.draw(st.permutations(range(len(_EG_POOL))), label="configs")
    name = f"gen:{alias}:{seed}"
    machines = _machines(order[:width])

    rec_fp, fp_schedules = _sweep_schedules(
        _fresh_trace(name), machines, force_fallback=False
    )
    rec_sc, sc_schedules = _sweep_schedules(
        _fresh_trace(name), machines, force_fallback=True
    )

    assert rec_fp == rec_sc
    assert len(fp_schedules) == len(sc_schedules) > 0
    for (t_fp, o_fp), (t_sc, o_sc) in zip(fp_schedules, sc_schedules):
        assert t_fp == t_sc
        assert o_fp == o_sc


@needs_numpy
def test_forced_fallback_is_byte_identical():
    """A zero fixed-point round budget (pathological divergence stand-in)
    forces every kernel config onto the scalar recording fallback; the
    stats must still be byte-identical to the inline simulator and the
    fallback counter must say so."""
    machines = _machines((1, 2, 5, 6))
    inline_trace = _fresh_trace("gen:mixed:7")
    inline = [
        stats_to_record(TimingSimulator(inline_trace, m)._run_inline())
        for m in machines
    ]
    mp = pytest.MonkeyPatch()
    try:
        mp.setattr(replay_kernel, "_FP_MAX_ROUNDS", 0)
        mp.setattr(replay_kernel.KernelState, "pick_donor",
                   lambda self, key, nl: None)
        ctr = kernel_counters()
        stats = simulate_many(_fresh_trace("gen:mixed:7"), machines,
                              counters=ctr)
    finally:
        mp.undo()
    assert [stats_to_record(s) for s in stats] == inline
    assert ctr.fallbacks > 0
    assert ctr.leaders == 0


# ---------------------------------------------------------------------------
# Profitability gate (satellite: adpcm short-trace regression)
# ---------------------------------------------------------------------------

@needs_numpy
def test_adpcm_short_trace_stays_off_kernel_at_defaults():
    """adpcm_decode at bench scale 0.05 sits between the stream floor
    and the kernel floor: streams are still profitable, the kernel is
    not.  The default thresholds must keep it that way."""
    trace = _fresh_trace("adpcm_decode")
    n = len(trace.uids)
    assert precompute._PRECOMPUTE_MIN_N <= n < replay_kernel._KERNEL_MIN_N
    machines = _machines((0, 1, 2, 4, 5, 6))
    ctr = kernel_counters()
    stats = simulate_many(trace, machines, counters=ctr)
    assert (ctr.leaders, ctr.followers, ctr.fallbacks) == (0, 0, 0)
    for got, m in zip(stats, machines):
        want = TimingSimulator(_fresh_trace("adpcm_decode"), m)._run_inline()
        assert stats_to_record(got) == stats_to_record(want)


# ---------------------------------------------------------------------------
# Environment overrides (satellite: REPRO_KERNEL_MIN_N / _MIN_SWEEP)
# ---------------------------------------------------------------------------

def test_env_int_parses_and_validates(monkeypatch):
    monkeypatch.delenv("X_REPRO_TEST_KNOB", raising=False)
    assert env_int("X_REPRO_TEST_KNOB", 7) == 7
    monkeypatch.setenv("X_REPRO_TEST_KNOB", "")
    assert env_int("X_REPRO_TEST_KNOB", 7) == 7
    monkeypatch.setenv("X_REPRO_TEST_KNOB", "  42 ")
    assert env_int("X_REPRO_TEST_KNOB", 7) == 42
    monkeypatch.setenv("X_REPRO_TEST_KNOB", "banana")
    with pytest.raises(ValueError, match="must be an integer"):
        env_int("X_REPRO_TEST_KNOB", 7)
    monkeypatch.setenv("X_REPRO_TEST_KNOB", "-3")
    with pytest.raises(ValueError, match="must be >="):
        env_int("X_REPRO_TEST_KNOB", 7)


def _subprocess_env(**extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC
    env.update(extra)
    return env


def test_kernel_threshold_env_overrides_apply():
    probe = (
        "import repro.sim.replay_kernel as rk, repro.sim.precompute as pc;"
        "print(rk._KERNEL_MIN_N, pc._KERNEL_MIN_SWEEP)"
    )
    out = subprocess.run(
        [sys.executable, "-c", probe],
        env=_subprocess_env(REPRO_KERNEL_MIN_N="512",
                            REPRO_KERNEL_MIN_SWEEP="9"),
        capture_output=True, text=True,
    )
    assert out.returncode == 0, out.stderr
    assert out.stdout.split() == ["512", "9"]


@pytest.mark.parametrize("var,value", [
    ("REPRO_KERNEL_MIN_N", "many"),
    ("REPRO_KERNEL_MIN_N", "-1"),
    ("REPRO_KERNEL_MIN_SWEEP", "4.5"),
])
def test_kernel_threshold_env_rejects_malformed(var, value):
    probe = "import repro.sim.replay_kernel, repro.sim.precompute"
    out = subprocess.run(
        [sys.executable, "-c", probe],
        env=_subprocess_env(**{var: value}),
        capture_output=True, text=True,
    )
    assert out.returncode != 0
    assert var in out.stderr and "must be" in out.stderr


# ---------------------------------------------------------------------------
# Per-sweep counters (satellite: no shared mutable globals)
# ---------------------------------------------------------------------------

@needs_numpy
def test_path_counters_isolate_sweeps_and_aggregate():
    machines = _machines((1, 2, 5, 6))
    before = replay_kernel.path_counts()
    c1 = kernel_counters()
    c2 = kernel_counters()
    simulate_many(_fresh_trace("gen:strided:1"), machines, counters=c1)
    assert c2.leaders == c2.followers == c2.fallbacks == 0, (
        "an unused sweep counter observed another sweep's activity"
    )
    simulate_many(_fresh_trace("gen:strided:2"), machines, counters=c2)
    total1 = c1.leaders + c1.followers + c1.fallbacks
    total2 = c2.leaders + c2.followers + c2.fallbacks
    assert total1 > 0 and total2 > 0
    after = replay_kernel.path_counts()
    for field in ("leaders", "followers", "fallbacks",
                  "fixed_point_rounds", "batched_windows"):
        delta = after[field] - before[field]
        assert delta == getattr(c1, field) + getattr(c2, field), field


@needs_numpy
def test_fixed_point_round_and_window_observability():
    """The sweep counters expose fixed-point effort: a warm wide sweep
    reports at least one fixed-point round per leader, and as_dict
    carries every schema-4 field the bench reads."""
    machines = _machines((0, 1, 3, 6))
    ctr = kernel_counters()
    simulate_many(_fresh_trace("gen:irregular:5"), machines, counters=ctr)
    assert ctr.leaders > 0
    assert ctr.fixed_point_rounds >= ctr.leaders
    d = ctr.as_dict()
    for field in ("leaders", "followers", "fallbacks",
                  "fixed_point_rounds", "batched_windows",
                  "leader_s", "repair_s"):
        assert field in d
