"""Property test: the fast-path simulator matches the seed implementation.

``TimingSimulator.run`` was restructured for throughput (decode-once
flat arrays, ring-buffer scoreboards, inlined cache/predictor state
machines).  The original dict-scoreboard implementation is kept verbatim
in :mod:`repro.sim._pipeline_reference` as an executable specification;
this test replays randomized programs under randomized machine and
early-generation configs through both and requires bit-identical
:class:`~repro.sim.stats.SimStats` — every counter, every scheme count,
and (when enabled) every timeline entry.

Programs are generated two ways:

* random assembly kernels: a store loop that seeds a data array, then a
  walk loop mixing strided ``ld_n``/``ld_p``/``ld_e`` loads, stores, and
  ALU traffic over a small register pool — this exercises the
  prediction-table state machine, R_addr binding, and the dcache inline
  paths under every selection mode;
* randomized mini-C sources built from the quickstart template with
  random array sizes, strides, and trip counts — this routes through the
  full compiler (classification included) and adds FP-free but
  branch-heavy traces with compiler-chosen load specs.

Seeds are fixed, so failures reproduce deterministically.
"""

from __future__ import annotations

import random
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.compiler.driver import compile_source
from repro.isa import parse_asm
from repro.sim._pipeline_reference import reference_run
from repro.sim.executor import Executor, execute
from repro.sim.machine import (
    CacheConfig,
    EarlyGenConfig,
    MachineConfig,
    SelectionMode,
)
from repro.sim.pipeline import TimingSimulator

from golden_cases import stats_to_record

_VALUE_REGS = (5, 7, 8, 9, 10, 11)
_ALU_OPS = ("add", "sub", "mul", "and", "or", "xor")


def _random_asm(rng: random.Random) -> str:
    """A random but well-defined strided kernel over one data array."""
    iters = rng.randint(6, 24)
    stride = rng.choice((4, 8, 12))
    # The walk loop advances the base `iters` times and loads at
    # offsets up to 12 bytes past it; size the array to keep every
    # access in bounds.
    size = stride * iters + 16
    body = []
    for _ in range(rng.randint(3, 8)):
        kind = rng.random()
        if kind < 0.45:
            spec = rng.choice(("_n", "_p", "_e"))
            dest = rng.choice(_VALUE_REGS)
            off = 4 * rng.randint(0, 3)
            body.append(f"    ld{spec} r{dest}, r4({off})")
        elif kind < 0.6:
            value = rng.choice(_VALUE_REGS)
            off = 4 * rng.randint(0, 3)
            body.append(f"    st r{value}, r4({off})")
        else:
            op = rng.choice(_ALU_OPS)
            dest = rng.choice(_VALUE_REGS)
            a = rng.choice(_VALUE_REGS)
            if rng.random() < 0.5:
                body.append(f"    {op} r{dest}, r{a}, {rng.randint(1, 7)}")
            else:
                b = rng.choice(_VALUE_REGS)
                body.append(f"    {op} r{dest}, r{a}, r{b}")
    lines = [
        f".data arr {size}",
        "main:",
        "    lea r4, arr",
        "    mov r6, 0",
        "init:",
        "    st r6, r4(0)",
        f"    add r4, r4, {stride}",
        "    add r6, r6, 1",
        f"    blt r6, {iters}, init",
        "    lea r4, arr",
        "    mov r6, 0",
    ]
    for reg in _VALUE_REGS:
        lines.append(f"    mov r{reg}, {rng.randint(0, 5)}")
    lines.append("loop:")
    lines.extend(body)
    lines.append(f"    add r4, r4, {stride}")
    lines.append("    add r6, r6, 1")
    lines.append(f"    blt r6, {iters}, loop")
    lines.append("    halt")
    return "\n".join(lines)


_C_TEMPLATE = """
int table[{size}];
int keys[{size}];

int main() {{
    int i; int total = 0;
    for (i = 0; i < {size}; i++) {{
        keys[i] = (i * {mult}) & {mask};
        table[i] = i * {scale};
    }}
    for (i = 0; i < {size}; i += {step}) {{
        total += table[keys[i]];
    }}
    print_int(total);
    return 0;
}}
"""


def _random_c_source(rng: random.Random) -> str:
    size = rng.choice((64, 128, 256))
    return _C_TEMPLATE.format(
        size=size,
        mask=size - 1,
        mult=rng.choice((3, 7, 13)),
        scale=rng.randint(1, 9),
        step=rng.choice((1, 2, 4)),
    )


def _random_machine(rng: random.Random) -> MachineConfig:
    if rng.random() < 0.4:
        machine = MachineConfig()
    else:
        machine = MachineConfig(
            issue_width=rng.choice((2, 4, 6)),
            int_alus=rng.choice((2, 4)),
            mem_ports=rng.choice((1, 2)),
            dcache=CacheConfig(
                size=rng.choice((1024, 4096, 16384)),
                ways=rng.choice((1, 2)),
            ),
            icache=CacheConfig(size=rng.choice((4096, 16384))),
        )
    earlygen = EarlyGenConfig(
        rng.choice((0, 4, 16, 64, 256)),
        rng.choice((0, 1, 2)),
        rng.choice((SelectionMode.COMPILER, SelectionMode.HARDWARE)),
        table_confidence_bits=rng.choice((0, 0, 1, 2)),
    )
    return machine.with_earlygen(earlygen)


def _assert_parity(trace, machine, collect_timeline: bool) -> None:
    reference = stats_to_record(
        reference_run(
            TimingSimulator(trace, machine, collect_timeline=collect_timeline)
        )
    )
    fast = stats_to_record(
        TimingSimulator(
            trace, machine, collect_timeline=collect_timeline
        ).run()
    )
    assert fast == reference


@pytest.mark.parametrize("seed", range(10))
def test_random_asm_kernels_match_reference(seed):
    rng = random.Random(0xA5E0 + seed)
    trace = execute(parse_asm(_random_asm(rng))).trace
    for _ in range(3):
        _assert_parity(trace, _random_machine(rng), rng.random() < 0.3)


@pytest.mark.parametrize("seed", range(3))
def test_random_compiled_programs_match_reference(seed):
    rng = random.Random(0xC0DE + seed)
    result = compile_source(_random_c_source(rng))
    trace = Executor(result.program).run().trace
    for _ in range(2):
        _assert_parity(trace, _random_machine(rng), rng.random() < 0.3)
