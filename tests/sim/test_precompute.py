"""The config-invariant precompute layer (:mod:`repro.sim.precompute`).

Covers what the parity suites do not:

* cache bounds — the Program-attached caches (front-end outcomes, trace
  precomputes, per-config streams/routes) stay bounded no matter how
  many machines or configs a long service session replays;
* fast-path gating — one-shot ``run()`` calls never pay a precompute
  build, hooks/timeline/override runs stay inline, and ``simulate_many``
  results land byte-identical to independent runs;
* golden lock — every eligible golden case replayed through
  ``simulate_many`` reproduces its recorded snapshot exactly;
* divergence patching — wrong-address pollution that cannot dispatch is
  resolved by stream rebuilds, not by silently wrong stats.
"""

from __future__ import annotations

import json
import random
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.isa import parse_asm
from repro.sim import precompute
from repro.sim.executor import execute
from repro.sim.machine import (
    CacheConfig,
    EarlyGenConfig,
    MachineConfig,
    SelectionMode,
)
from repro.sim.pipeline import _FRONTEND_CACHE_LIMIT, TimingSimulator
from repro.sim.precompute import (
    _PRECOMPUTE_LIMIT,
    _ROUTE_LIMIT,
    _STREAM_LIMIT,
    get_precompute,
    simulate_many,
    warm_precompute,
)

from golden_cases import GOLDEN_PATH, iter_cases, stats_to_record
from test_pipeline_parity import _random_asm


@pytest.fixture
def trace():
    rng = random.Random(0xBEEF)
    return execute(parse_asm(_random_asm(rng))).trace


def _machine_variant(n: int) -> MachineConfig:
    """Distinct machine shapes (different icache => different keys)."""
    return MachineConfig(icache=CacheConfig(size=1024 << n))


# ---------------------------------------------------------------------------
# Cache bounds
# ---------------------------------------------------------------------------

def test_frontend_cache_is_bounded(trace):
    program = trace.program
    for n in range(_FRONTEND_CACHE_LIMIT + 4):
        TimingSimulator(trace, _machine_variant(n)).run()
    uids, inner = program._frontend_pre
    assert uids is trace.uids
    assert len(inner) <= _FRONTEND_CACHE_LIMIT


def test_precompute_store_is_bounded(trace):
    program = trace.program
    for n in range(_PRECOMPUTE_LIMIT + 3):
        assert get_precompute(trace, _machine_variant(n)) is not None
    uids, store = program._sim_precompute
    assert uids is trace.uids
    assert len(store) <= _PRECOMPUTE_LIMIT
    # LRU: the most recent machine is still warm.
    warm = get_precompute(trace, _machine_variant(_PRECOMPUTE_LIMIT + 2),
                          build=False)
    assert warm is not None


def test_stream_and_route_caches_are_bounded(trace):
    pre = get_precompute(trace, MachineConfig())
    n_static = len(pre.static_load_uids)
    assert n_static > 0
    for n in range(_ROUTE_LIMIT + 5):
        # Distinct synthetic routings: first n loads prediction-routed.
        scheme = bytes(1 if i < n % (n_static + 1) else 0
                       for i in range(n_static))
        pre.route_for(scheme)
    assert len(pre._routes) <= _ROUTE_LIMIT

    route = pre.route_for(bytes([1] * n_static))
    combos = [
        (entries, conf)
        for entries in (2, 4, 8, 16, 32, 64, 128, 256)
        for conf in (0, 1, 2, 3, 4)
    ]
    for entries, conf in combos[: _STREAM_LIMIT + 6]:
        eg = EarlyGenConfig(entries, 0, SelectionMode.HARDWARE,
                            table_confidence_bits=conf)
        pre.dstream(eg, route)
    assert len(pre._dstreams) <= _STREAM_LIMIT


def test_precompute_invalidated_when_program_recompiled(trace):
    pre = get_precompute(trace, MachineConfig())
    assert get_precompute(trace, MachineConfig(), build=False) is pre
    trace.program.flat = list(trace.program.flat)  # simulate re-lowering
    assert get_precompute(trace, MachineConfig(), build=False) is None


# ---------------------------------------------------------------------------
# Fast-path gating
# ---------------------------------------------------------------------------

def test_one_shot_run_never_builds_a_precompute(trace):
    machine = MachineConfig().with_earlygen(
        EarlyGenConfig(64, 0, SelectionMode.HARDWARE)
    )
    TimingSimulator(trace, machine).run()
    assert getattr(trace.program, "_sim_precompute", None) is None


def test_warm_run_uses_fast_path_and_matches_inline(trace):
    machine = MachineConfig().with_earlygen(
        EarlyGenConfig(64, 0, SelectionMode.HARDWARE)
    )
    inline = stats_to_record(TimingSimulator(trace, machine)._run_inline())
    (batched,) = simulate_many(trace, [machine])
    assert stats_to_record(batched) == inline
    # The precompute is now warm, so a plain run() takes the fast path
    # and must agree too.
    assert getattr(trace.program, "_sim_precompute", None) is not None
    assert stats_to_record(TimingSimulator(trace, machine).run()) == inline


def test_event_hook_runs_stay_inline(trace):
    machine = MachineConfig().with_earlygen(
        EarlyGenConfig(64, 0, SelectionMode.HARDWARE)
    )
    warm_precompute(trace, MachineConfig(), [machine.earlygen])
    payloads = []
    stats = TimingSimulator(
        trace, machine, event_hook=payloads.append
    ).run()
    assert payloads, "event hook did not fire"
    assert payloads[-1]["cycles"] == stats.cycles


def test_hw_dual_configs_fall_back_to_inline(trace):
    machine = MachineConfig().with_earlygen(
        EarlyGenConfig(16, 2, SelectionMode.HARDWARE)
    )
    assert precompute.try_fast(
        TimingSimulator(trace, machine), build=True
    ) is None
    inline = stats_to_record(TimingSimulator(trace, machine)._run_inline())
    (batched,) = simulate_many(trace, [machine])
    assert stats_to_record(batched) == inline


def test_simulate_many_accepts_earlygen_and_machine_items(trace):
    base = MachineConfig(mem_ports=1)
    eg = EarlyGenConfig(16, 0, SelectionMode.HARDWARE)
    mixed = simulate_many(
        trace, [eg, base.with_earlygen(eg)], machine=base
    )
    assert stats_to_record(mixed[0]) == stats_to_record(mixed[1])


# ---------------------------------------------------------------------------
# Divergence patching
# ---------------------------------------------------------------------------

def test_divergence_patching_converges_without_fallback():
    """Port-starved machines (mem_ports=1) produce wrong-address
    pollution that cannot dispatch; patching must resolve it exactly."""
    rng = random.Random(0xD1CE)
    fallbacks_before = precompute.divergence_fallback_count()
    diverged = False
    for _ in range(8):
        trace = execute(parse_asm(_random_asm(rng))).trace
        machine = MachineConfig(
            mem_ports=1, dcache=CacheConfig(size=1024)
        ).with_earlygen(EarlyGenConfig(16, 0, SelectionMode.HARDWARE))
        before = precompute.divergence_count()
        inline = stats_to_record(
            TimingSimulator(trace, machine)._run_inline()
        )
        fast = precompute.try_fast(
            TimingSimulator(trace, machine), build=True
        )
        assert fast is not None
        assert stats_to_record(fast) == inline
        if precompute.divergence_count() > before:
            diverged = True
            # Convergence is remembered: a second fast run must not
            # rediscover the exclusions.
            again = precompute.divergence_count()
            rerun = precompute.try_fast(
                TimingSimulator(trace, machine), build=True
            )
            assert stats_to_record(rerun) == inline
            assert precompute.divergence_count() == again
    assert diverged, "seeds no longer produce divergence; rotate them"
    assert precompute.divergence_fallback_count() == fallbacks_before


# ---------------------------------------------------------------------------
# Golden lock
# ---------------------------------------------------------------------------

def test_simulate_many_reproduces_golden_stats_exactly():
    with GOLDEN_PATH.open(encoding="utf-8") as fh:
        golden = json.load(fh)["cases"]
    groups: dict = {}
    for case_id, trace, machine, overrides, collect_timeline in iter_cases():
        if collect_timeline:
            continue  # timeline collection is inline-only by design
        entry = groups.setdefault(id(trace), (trace, []))
        entry[1].append((case_id, machine, overrides))
    checked = 0
    for trace, cases in groups.values():
        stats_list = simulate_many(
            trace,
            [machine for _, machine, _ in cases],
            overrides=[ov for _, _, ov in cases],
        )
        for (case_id, _, _), stats in zip(cases, stats_list):
            assert stats_to_record(stats) == golden[case_id], case_id
            checked += 1
    assert checked >= 15
