"""Timing-simulator watchdogs: SimulationHang with pipeline-state dump."""

import pytest

from repro.errors import ReproError, SimulationHang
from repro.sim.machine import MachineConfig
from repro.sim.pipeline import TimingSimulator
from tests.conftest import run_c

SOURCE = """
int main() {
    int a[64];
    int i;
    int s;
    s = 0;
    for (i = 0; i < 64; i = i + 1) { a[i] = i; }
    for (i = 0; i < 64; i = i + 1) { s = s + a[i]; }
    print_int(s);
    return 0;
}
"""


@pytest.fixture(scope="module")
def trace():
    return run_c(SOURCE).trace


def test_default_budget_scales_with_trace(trace):
    sim = TimingSimulator(trace, MachineConfig())
    assert sim.max_cycles > len(trace.uids)
    # A normal run fits comfortably inside the derived budget.
    assert sim.run().cycles < sim.max_cycles


def test_cycle_budget_exceeded_raises_hang(trace):
    sim = TimingSimulator(trace, MachineConfig(), max_cycles=10)
    with pytest.raises(SimulationHang) as info:
        sim.run()
    err = info.value
    assert isinstance(err, ReproError)
    assert "cycle budget exceeded" in str(err)
    # The dump localizes the wedge: cycle, position in the trace, opcode.
    assert err.dump["cycle"] > 10
    assert 0 <= err.dump["trace_index"] < err.dump["trace_length"]
    assert err.dump["uid"] == trace.uids[err.dump["trace_index"]]
    assert isinstance(err.dump["opcode"], str)
    assert "pipeline state" in str(err)


def test_stall_limit_raises_hang(trace):
    # A 1-cycle stall budget trips on the first multi-cycle instruction.
    sim = TimingSimulator(trace, MachineConfig(), stall_limit=1)
    with pytest.raises(SimulationHang, match="no retirement"):
        sim.run()


def test_zero_disables_both_watchdogs(trace):
    sim = TimingSimulator(trace, MachineConfig(), max_cycles=0, stall_limit=0)
    reference = TimingSimulator(trace, MachineConfig()).run()
    assert sim.run().cycles == reference.cycles
