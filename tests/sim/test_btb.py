"""Branch target buffer tests."""

import pytest

from repro.sim.btb import BranchTargetBuffer


def test_entries_power_of_two():
    with pytest.raises(ValueError):
        BranchTargetBuffer(1000)


def test_cold_predicts_not_taken():
    btb = BranchTargetBuffer(64)
    assert btb.predict(0x1000) == (False, 0)


def test_allocation_on_taken():
    btb = BranchTargetBuffer(64)
    btb.update(0x1000, True, 0x2000, mispredicted=True)
    taken, target = btb.predict(0x1000)
    assert taken and target == 0x2000


def test_not_taken_branches_not_allocated():
    btb = BranchTargetBuffer(64)
    btb.update(0x1000, False, 0, mispredicted=False)
    assert btb.predict(0x1000) == (False, 0)


def test_two_bit_hysteresis():
    btb = BranchTargetBuffer(64)
    pc = 0x1000
    btb.update(pc, True, 0x2000, True)  # allocate, counter=2
    btb.update(pc, True, 0x2000, False)  # counter=3
    btb.update(pc, False, 0, False)  # counter=2: still predicts taken
    assert btb.predict(pc)[0]
    btb.update(pc, False, 0, False)  # counter=1
    assert not btb.predict(pc)[0]


def test_counter_saturation():
    btb = BranchTargetBuffer(64)
    pc = 0x1000
    for _ in range(10):
        btb.update(pc, True, 0x2000, False)
    # one not-taken cannot flip a saturated counter
    btb.update(pc, False, 0, False)
    assert btb.predict(pc)[0]


def test_target_update():
    btb = BranchTargetBuffer(64)
    pc = 0x1000
    btb.update(pc, True, 0x2000, True)
    btb.update(pc, True, 0x3000, True)  # indirect branch changed target
    assert btb.predict(pc)[1] == 0x3000


def test_index_conflict():
    btb = BranchTargetBuffer(64)
    a = 0x1000
    b = 0x1000 + 64 * 4  # same index, different tag
    btb.update(a, True, 0x2000, True)
    btb.update(b, True, 0x4000, True)
    assert btb.predict(b) == (True, 0x4000)
    assert btb.predict(a) == (False, 0)  # evicted


def test_accuracy_counter():
    btb = BranchTargetBuffer(64)
    btb.update(0x10, True, 0x20, True)
    btb.update(0x10, True, 0x20, False)
    assert btb.accuracy == 0.5
    assert btb.mispredicts == 1


def test_loop_branch_converges():
    """A taken-9-of-10 loop branch should be predicted well."""
    btb = BranchTargetBuffer(1024)
    pc = 0x5000
    mispredicts = 0
    for i in range(100):
        taken = (i % 10) != 9
        ptaken, ptarget = btb.predict(pc)
        wrong = ptaken != taken or (taken and ptarget != 0x6000)
        if wrong:
            mispredicts += 1
        btb.update(pc, taken, 0x6000 if taken else 0, wrong)
    assert mispredicts <= 25
