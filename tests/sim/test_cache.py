"""Direct-mapped cache model tests."""

import pytest

from repro.sim.cache import DirectMappedCache
from repro.sim.machine import CacheConfig


def small_cache():
    return DirectMappedCache(CacheConfig(size=1024, block_size=64))


def test_config_validation():
    with pytest.raises(ValueError):
        CacheConfig(size=1000, block_size=64)
    with pytest.raises(ValueError):
        CacheConfig(size=192, block_size=64)  # 3 blocks


def test_cold_miss_then_hit():
    c = small_cache()
    assert not c.access(0x100)
    assert c.access(0x100)
    assert c.access(0x13F)  # same 64-byte block
    assert (c.hits, c.misses) == (2, 1)


def test_block_granularity():
    c = small_cache()
    c.access(0x0)
    assert c.access(0x3F)
    assert not c.access(0x40)  # next block


def test_conflict_eviction():
    c = small_cache()  # 16 blocks
    a = 0x0
    b = 16 * 64  # maps to the same index
    c.access(a)
    assert not c.access(b)
    assert not c.access(a)  # evicted


def test_probe_does_not_allocate():
    c = small_cache()
    assert not c.probe(0x200)
    assert not c.access(0x200)  # still a miss: probe didn't fill
    assert c.probe(0x200)
    hits_before = c.hits
    c.probe(0x200)  # probes don't count in stats
    assert c.hits == hits_before


def test_write_through_no_allocate():
    c = small_cache()
    assert not c.write_access(0x300)
    assert not c.access(0x300)  # store miss did not fill
    assert c.write_access(0x300)  # but the load fill serves stores


def test_reset():
    c = small_cache()
    c.access(0x100)
    c.reset()
    assert not c.access(0x100)
    assert c.misses == 1


def test_distinct_indices_coexist():
    c = small_cache()
    for i in range(16):
        c.access(i * 64)
    assert all(c.probe(i * 64) for i in range(16))


def test_paper_default_geometry():
    c = DirectMappedCache(CacheConfig())
    assert c.config.size == 64 * 1024
    assert c.config.block_size == 64
    assert c.config.num_blocks == 1024
    assert c.config.miss_penalty == 12


class TestSetAssociative:
    def _cache(self, ways, size=1024):
        from repro.sim.cache import SetAssociativeCache

        cache = DirectMappedCache(
            CacheConfig(size=size, block_size=64, ways=ways)
        )
        assert isinstance(cache, SetAssociativeCache)
        return cache

    def test_config_validation(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            CacheConfig(size=1024, block_size=64, ways=0)
        with _pytest.raises(ValueError):
            CacheConfig(size=1024, block_size=64, ways=3)  # 16 % 3 != 0

    def test_two_way_resolves_the_classic_conflict(self):
        # two blocks that alias in a direct-mapped cache coexist 2-way
        direct = DirectMappedCache(CacheConfig(size=1024, block_size=64))
        assoc = self._cache(2)
        a, b = 0x0, 512 * 2  # same direct-mapped index
        for cache in (direct, assoc):
            cache.access(a)
            cache.access(b)
        assert not direct.probe(a)  # evicted
        assert assoc.probe(a) and assoc.probe(b)

    def test_lru_replacement(self):
        cache = self._cache(2, size=128)  # 1 set, 2 ways
        cache.access(0 * 64)
        cache.access(1 * 64)
        cache.access(0 * 64)  # refresh 0
        cache.access(2 * 64)  # evicts 1 (LRU)
        assert cache.probe(0 * 64)
        assert not cache.probe(1 * 64)
        assert cache.probe(2 * 64)

    def test_write_through_no_allocate(self):
        cache = self._cache(4)
        assert not cache.write_access(0x100)
        assert not cache.probe(0x100)
        cache.access(0x100)
        assert cache.write_access(0x100)

    def test_counters(self):
        cache = self._cache(2)
        for addr in (0, 64, 0, 128, 64):
            cache.access(addr)
        assert cache.hits + cache.misses == 5

    def test_full_associativity_never_conflicts(self):
        cache = self._cache(16, size=1024)  # 1 set, 16 ways
        for i in range(16):
            cache.access(i * 4096)
        assert all(cache.probe(i * 4096) for i in range(16))

    def test_pipeline_runs_with_associative_dcache(self):
        from repro.isa import parse_asm
        from repro.sim.executor import execute
        from repro.sim.machine import MachineConfig
        from repro.sim.pipeline import TimingSimulator

        program = parse_asm(
            """
            .data arr 256
            main:
                lea r4, arr
                mov r6, 0
            loop:
                ld_n r7, r4(0)
                add r5, r5, r7
                add r4, r4, 4
                add r6, r6, 1
                blt r6, 32, loop
                halt
            """
        )
        trace = execute(program).trace
        stats = TimingSimulator(
            trace,
            MachineConfig(
                dcache=CacheConfig(size=1024, block_size=64, ways=4)
            ),
        ).run()
        assert stats.cycles > 0
        assert stats.dcache_misses >= 1
