"""Tests for the optional hardware extensions beyond the paper:
confidence counters on the prediction table (Gonzalez-style) and a
return-address stack."""

import pytest

from repro.isa import (
    DataItem,
    Function,
    Imm,
    Instruction,
    Label,
    LoadSpec,
    Opcode,
    Program,
    Reg,
    Sym,
)
from repro.sim.executor import execute
from repro.sim.machine import EarlyGenConfig, MachineConfig, SelectionMode
from repro.sim.pipeline import TimingSimulator
from repro.sim.stride_table import AddressPredictionTable


def I(op, dest=None, srcs=(), target=None, lspec=LoadSpec.N):  # noqa: E743
    return Instruction(op, dest, srcs, target, lspec)


class TestConfidenceCounters:
    def test_validation(self):
        with pytest.raises(ValueError):
            AddressPredictionTable(64, confidence_bits=9)
        with pytest.raises(ValueError):
            EarlyGenConfig(64, 0, table_confidence_bits=-1)

    def test_zero_bits_is_paper_behavior(self):
        plain = AddressPredictionTable(64)
        assert plain.confidence_bits == 0
        plain.update(0x100, 500)
        assert plain.probe(0x100) == 500  # predicts immediately

    def test_functioning_but_wrong_gets_suppressed(self):
        """Short strided runs re-train the Figure 3 machine into the
        functioning state just in time for the next jump, so every
        dispatched prediction is wrong — the exact pattern Gonzalez's
        counters exist to starve."""
        addrs = []
        for run in range(20):
            base = run * 4096
            addrs.extend([base, base + 4, base + 8])

        def run_table(bits):
            table = AddressPredictionTable(64, confidence_bits=bits)
            dispatched = wrong = 0
            for addr in addrs:
                predicted = table.probe(0x100)
                if predicted is not None:
                    dispatched += 1
                    if predicted != addr:
                        wrong += 1
                table.update(0x100, addr)
            return table, dispatched, wrong

        plain, plain_dispatched, plain_wrong = run_table(0)
        conf, conf_dispatched, conf_wrong = run_table(2)
        assert plain_wrong == plain_dispatched > 10  # always wrong
        assert conf.suppressed > 0
        assert conf_wrong < plain_wrong  # wasted accesses eliminated

    def test_strided_load_still_predicts(self):
        table = AddressPredictionTable(64, confidence_bits=2)
        hits = 0
        for i in range(40):
            addr = 0x4000 + i * 8
            if table.probe(0x200) == addr:
                hits += 1
            table.update(0x200, addr)
        assert hits >= 34  # a few extra cold/confidence-warmup misses

    def test_confidence_recovers_after_phase_change(self):
        table = AddressPredictionTable(64, confidence_bits=2)
        addr = 0
        for i in range(12):  # scrambled phase drives confidence to zero
            table.update(0x300, (i * i * 977) & 0xFFFC)
        for i in range(30):  # strided phase
            addr = 0x8000 + i * 4
            table.update(0x300, addr)
        assert table.probe(0x300) == addr + 4

    def test_pipeline_accepts_confidence_config(self):
        p = Program()
        f = Function("main")
        f.append(I(Opcode.LEA, Reg(4), [Sym("arr")]))
        f.append(I(Opcode.MOV, Reg(6), [Imm(0)]))
        f.append(Label("loop"))
        f.append(I(Opcode.LD, Reg(7), [Reg(4), Imm(0)], lspec=LoadSpec.P))
        f.append(I(Opcode.ADD, Reg(5), [Reg(5), Reg(7)]))
        f.append(I(Opcode.ADD, Reg(4), [Reg(4), Imm(4)]))
        f.append(I(Opcode.ADD, Reg(6), [Reg(6), Imm(1)]))
        f.append(I(Opcode.BLT, None, [Reg(6), Imm(50)], "loop"))
        f.append(I(Opcode.HALT))
        p.add_function(f)
        p.add_data(DataItem("arr", 204))
        p.layout()
        trace = execute(p).trace
        config = MachineConfig().with_earlygen(
            EarlyGenConfig(64, 0, SelectionMode.COMPILER,
                           table_confidence_bits=2)
        )
        stats = TimingSimulator(trace, config).run()
        assert stats.pred_success > 30


class TestReturnAddressStack:
    def _recursive_program(self):
        """main calls f(8); f recurses down and returns back up."""
        p = Program()
        main = Function("main")
        main.append(I(Opcode.MOV, Reg(2), [Imm(8)]))
        main.append(I(Opcode.CALL, target="f"))
        main.append(I(Opcode.OUT, None, [Reg(1)]))
        main.append(I(Opcode.HALT))
        p.add_function(main)
        f = Function("f")
        f.append(I(Opcode.SUB, Reg(62), [Reg(62), Imm(16)]))
        f.append(I(Opcode.ST, None, [Reg(63), Reg(62), Imm(0)]))
        f.append(I(Opcode.BLE, None, [Reg(2), Imm(0)], "base"))
        f.append(I(Opcode.SUB, Reg(2), [Reg(2), Imm(1)]))
        f.append(I(Opcode.CALL, target="f"))
        f.append(I(Opcode.ADD, Reg(1), [Reg(1), Imm(1)]))
        f.append(I(Opcode.JMP, target="out"))
        f.append(Label("base"))
        f.append(I(Opcode.MOV, Reg(1), [Imm(0)]))
        f.append(Label("out"))
        f.append(I(Opcode.LD, Reg(63), [Reg(62), Imm(0)]))
        f.append(I(Opcode.ADD, Reg(62), [Reg(62), Imm(16)]))
        f.append(I(Opcode.RET))
        p.add_function(f)
        p.layout()
        return p

    def test_ras_removes_return_mispredicts(self):
        program = self._recursive_program()
        result = execute(program)
        assert result.output == [8]
        trace = result.trace
        without = TimingSimulator(trace, MachineConfig()).run()
        with_ras = TimingSimulator(
            trace, MachineConfig(ras_entries=16)
        ).run()
        assert with_ras.btb_mispredicts < without.btb_mispredicts
        assert with_ras.cycles <= without.cycles

    def test_shallow_ras_overflows_gracefully(self):
        program = self._recursive_program()
        trace = execute(program).trace
        shallow = TimingSimulator(
            trace, MachineConfig(ras_entries=2)
        ).run()
        deep = TimingSimulator(
            trace, MachineConfig(ras_entries=16)
        ).run()
        assert deep.btb_mispredicts <= shallow.btb_mispredicts

    def test_default_machine_has_no_ras(self):
        assert MachineConfig().ras_entries == 0
