"""Functional-emulator tests over hand-built programs."""

import pytest

from repro.isa import (
    DataItem,
    Function,
    Imm,
    Instruction,
    Label,
    Opcode,
    Program,
    Reg,
    Sym,
)
from repro.sim.executor import EmulationError, Executor, execute


def build(items, data=()):
    p = Program()
    f = Function("main")
    for item in items:
        f.append(item)
    p.add_function(f)
    for d in data:
        p.add_data(d)
    p.layout()
    return p


def I(op, dest=None, srcs=(), target=None):  # noqa: E743
    return Instruction(op, dest, srcs, target)


def run(items, data=()):
    return execute(build(items, data))


def alu_result(op, a, b):
    res = run(
        [
            I(Opcode.MOV, Reg(1), [Imm(a)]),
            I(op, Reg(2), [Reg(1), Imm(b)]),
            I(Opcode.OUT, None, [Reg(2)]),
            I(Opcode.HALT),
        ]
    )
    return res.output[0]


@pytest.mark.parametrize(
    "op,a,b,expected",
    [
        (Opcode.ADD, 3, 4, 7),
        (Opcode.ADD, 0x7FFFFFFF, 1, -(1 << 31)),  # wraparound
        (Opcode.SUB, 3, 10, -7),
        (Opcode.MUL, 100000, 100000, 1410065408),  # 10^10 mod 2^32
        (Opcode.DIV, 7, 2, 3),
        (Opcode.DIV, -7, 2, -3),  # truncation toward zero
        (Opcode.REM, -7, 2, -1),
        (Opcode.AND, 0b1100, 0b1010, 0b1000),
        (Opcode.OR, 0b1100, 0b1010, 0b1110),
        (Opcode.XOR, 0b1100, 0b1010, 0b0110),
        (Opcode.SLL, 1, 31, -(1 << 31)),
        (Opcode.SRL, -1, 28, 15),
        (Opcode.SRA, -8, 2, -2),
        (Opcode.CMPLT, 1, 2, 1),
        (Opcode.CMPLT, 2, 2, 0),
        (Opcode.CMPLE, 2, 2, 1),
        (Opcode.CMPGT, 3, 2, 1),
        (Opcode.CMPGE, 2, 3, 0),
        (Opcode.CMPEQ, 5, 5, 1),
        (Opcode.CMPNE, 5, 5, 0),
        (Opcode.CMPLTU, -1, 1, 0),  # unsigned: 0xFFFFFFFF > 1
    ],
)
def test_alu_semantics(op, a, b, expected):
    assert alu_result(op, a, b) == expected


def test_division_by_zero_raises():
    with pytest.raises(EmulationError):
        alu_result(Opcode.DIV, 1, 0)
    with pytest.raises(EmulationError):
        alu_result(Opcode.REM, 1, 0)


def test_r0_hardwired_zero():
    res = run(
        [
            I(Opcode.MOV, Reg(0), [Imm(99)]),  # architecturally discarded
            I(Opcode.OUT, None, [Reg(0)]),
            I(Opcode.HALT),
        ]
    )
    assert res.output == [0]


def test_load_store_word():
    res = run(
        [
            I(Opcode.MOV, Reg(1), [Imm(0x2000)]),
            I(Opcode.MOV, Reg(2), [Imm(-42)]),
            I(Opcode.ST, None, [Reg(2), Reg(1), Imm(4)]),
            I(Opcode.LD, Reg(3), [Reg(1), Imm(4)]),
            I(Opcode.OUT, None, [Reg(3)]),
            I(Opcode.HALT),
        ]
    )
    assert res.output == [-42]


def test_load_store_byte_unsigned():
    res = run(
        [
            I(Opcode.MOV, Reg(1), [Imm(0x2000)]),
            I(Opcode.MOV, Reg(2), [Imm(0x1FF)]),
            I(Opcode.STB, None, [Reg(2), Reg(1), Imm(0)]),
            I(Opcode.LDB, Reg(3), [Reg(1), Imm(0)]),
            I(Opcode.OUT, None, [Reg(3)]),
            I(Opcode.HALT),
        ]
    )
    assert res.output == [0xFF]


def test_reg_reg_addressing():
    res = run(
        [
            I(Opcode.MOV, Reg(1), [Imm(0x2000)]),
            I(Opcode.MOV, Reg(2), [Imm(8)]),
            I(Opcode.MOV, Reg(3), [Imm(77)]),
            I(Opcode.ST, None, [Reg(3), Reg(1), Reg(2)]),
            I(Opcode.LD, Reg(4), [Reg(1), Reg(2)]),
            I(Opcode.OUT, None, [Reg(4)]),
            I(Opcode.HALT),
        ]
    )
    assert res.output == [77]


def test_symbolic_absolute_load():
    res = run(
        [
            I(Opcode.LD, Reg(1), [Reg(0), Sym("tbl", 4)]),
            I(Opcode.OUT, None, [Reg(1)]),
            I(Opcode.HALT),
        ],
        data=[DataItem("tbl", 8, init=[10, 20])],
    )
    assert res.output == [20]


def test_lea_materializes_address():
    prog = build(
        [
            I(Opcode.LEA, Reg(1), [Sym("tbl")]),
            I(Opcode.LD, Reg(2), [Reg(1), Imm(0)]),
            I(Opcode.OUT, None, [Reg(2)]),
            I(Opcode.HALT),
        ],
        data=[DataItem("tbl", 4, init=[123])],
    )
    assert Executor(prog).run().output == [123]


def test_out_of_range_load_raises():
    with pytest.raises(EmulationError):
        run(
            [
                I(Opcode.MOV, Reg(1), [Imm(-100)]),
                I(Opcode.LD, Reg(2), [Reg(1), Imm(0)]),
                I(Opcode.HALT),
            ]
        )


def test_branches_and_loop():
    res = run(
        [
            I(Opcode.MOV, Reg(1), [Imm(0)]),
            I(Opcode.MOV, Reg(2), [Imm(0)]),
            Label("loop"),
            I(Opcode.ADD, Reg(2), [Reg(2), Reg(1)]),
            I(Opcode.ADD, Reg(1), [Reg(1), Imm(1)]),
            I(Opcode.BLT, None, [Reg(1), Imm(10)], "loop"),
            I(Opcode.OUT, None, [Reg(2)]),
            I(Opcode.HALT),
        ]
    )
    assert res.output == [45]


def test_call_and_ret():
    p = Program()
    main = Function("main")
    main.append(I(Opcode.MOV, Reg(2), [Imm(20)]))
    main.append(I(Opcode.CALL, target="double_it"))
    main.append(I(Opcode.OUT, None, [Reg(1)]))
    main.append(I(Opcode.HALT))
    p.add_function(main)
    callee = Function("double_it")
    callee.append(I(Opcode.ADD, Reg(1), [Reg(2), Reg(2)]))
    callee.append(I(Opcode.RET))
    p.add_function(callee)
    p.layout()
    assert Executor(p).run().output == [40]


def test_ret_from_main_halts():
    res = run([I(Opcode.MOV, Reg(1), [Imm(7)]), I(Opcode.RET)])
    assert res.steps == 2


def test_fp_arithmetic():
    import struct

    res = run(
        [
            I(Opcode.FLD, Reg(1, "fp"), [Reg(0), Sym("c")]),
            I(Opcode.CVTIF, Reg(2, "fp"), [Imm(3)]),
            I(Opcode.FMUL, Reg(3, "fp"), [Reg(1, "fp"), Reg(2, "fp")]),
            I(Opcode.CVTFI, Reg(1), [Reg(3, "fp")]),
            I(Opcode.OUT, None, [Reg(1)]),
            I(Opcode.HALT),
        ],
        data=[DataItem("c", 8, init=struct.pack("<d", 2.5), align=8)],
    )
    assert res.output == [7]  # int(7.5)


def test_fp_compare_and_store():
    import struct

    res = run(
        [
            I(Opcode.FLD, Reg(1, "fp"), [Reg(0), Sym("c")]),
            I(Opcode.CVTIF, Reg(2, "fp"), [Imm(2)]),
            I(Opcode.FCMPLT, Reg(3), [Reg(2, "fp"), Reg(1, "fp")]),
            I(Opcode.OUT, None, [Reg(3)]),
            I(Opcode.MOV, Reg(4), [Imm(0x3000)]),
            I(Opcode.FST, None, [Reg(1, "fp"), Reg(4), Imm(0)]),
            I(Opcode.FLD, Reg(5, "fp"), [Reg(4), Imm(0)]),
            I(Opcode.FCMPEQ, Reg(6), [Reg(5, "fp"), Reg(1, "fp")]),
            I(Opcode.OUT, None, [Reg(6)]),
            I(Opcode.HALT),
        ],
        data=[DataItem("c", 8, init=struct.pack("<d", 2.5), align=8)],
    )
    assert res.output == [1, 1]


def test_outc_builds_text():
    res = run(
        [
            I(Opcode.MOV, Reg(1), [Imm(72)]),
            I(Opcode.OUTC, None, [Reg(1)]),
            I(Opcode.OUTC, None, [Imm(105)]),
            I(Opcode.HALT),
        ]
    )
    assert res.text == "Hi"


def test_step_limit():
    prog = build(
        [
            Label("forever"),
            I(Opcode.JMP, target="forever"),
        ]
    )
    with pytest.raises(EmulationError):
        Executor(prog, max_steps=100).run()


def test_trace_records_uids_and_eas():
    res = run(
        [
            I(Opcode.MOV, Reg(1), [Imm(0x2000)]),
            I(Opcode.ST, None, [Reg(1), Reg(1), Imm(0)]),
            I(Opcode.LD, Reg(2), [Reg(1), Imm(0)]),
            I(Opcode.HALT),
        ]
    )
    trace = res.trace
    assert trace.uids == [0, 1, 2, 3]
    assert trace.eas == [-1, 0x2000, 0x2000, -1]
    assert trace.dynamic_load_count() == 1
    assert list(trace.load_addresses()) == [(2, 0x2000)]


def test_rerun_is_deterministic():
    prog = build(
        [
            I(Opcode.MOV, Reg(1), [Imm(5)]),
            I(Opcode.OUT, None, [Reg(1)]),
            I(Opcode.HALT),
        ]
    )
    ex = Executor(prog)
    assert ex.run().output == ex.run().output
