"""The vectorized array-replay kernel (:mod:`repro.sim.replay_kernel`).

The kernel's contract is PR 5's divergence-patching contract verbatim:
a config replayed through the kernel returns ``SimStats`` byte-identical
to the inline simulator or it does not return at all (scalar/inline
fallback).  These tests pin that contract on the leader, follower,
memo, and disabled paths, plus the divergence-patching edge cases the
kernel inherits: exclusion sets that flip across runs, patch-memo
collisions, and streams whose final chunk is shorter than the chunk
size.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.isa import parse_asm
from repro.sim import precompute, replay_kernel
from repro.sim.executor import execute
from repro.sim.machine import (
    CacheConfig,
    EarlyGenConfig,
    MachineConfig,
    SelectionMode,
)
from repro.sim.pipeline import TimingSimulator
from repro.sim.precompute import simulate_many, warm_kernel, warm_precompute

from golden_cases import stats_to_record
from test_pipeline_parity import _random_asm

needs_numpy = pytest.mark.skipif(
    not replay_kernel.kernel_available(),
    reason="numpy not importable (or kernel disabled in the environment)",
)


def _loop_asm(iters: int) -> str:
    """A strided walk long enough to clear ``_KERNEL_MIN_N`` for real."""
    return "\n".join([
        f".data arr {4 * iters + 64}",
        "main:",
        "    lea r4, arr",
        "    mov r6, 0",
        "init:",
        "    st r6, r4(0)",
        "    add r4, r4, 4",
        "    add r6, r6, 1",
        f"    blt r6, {iters}, init",
        "    lea r4, arr",
        "    mov r6, 0",
        "walk:",
        "    ld_p r7, r4(0)",
        "    ld_n r8, r4(4)",
        "    add r7, r7, r8",
        "    st r7, r4(0)",
        "    add r4, r4, 4",
        "    add r6, r6, 1",
        f"    blt r6, {iters - 2}, walk",
    ])


@pytest.fixture
def big_trace():
    return execute(parse_asm(_loop_asm(700))).trace


@pytest.fixture
def small_trace():
    rng = random.Random(0xBEE5)
    return execute(parse_asm(_random_asm(rng))).trace


def _eligible_kernel(monkeypatch):
    """Let unit-sized traces onto the kernel path."""
    monkeypatch.setattr(replay_kernel, "_KERNEL_MIN_N", 0)


def _sweep_machines(eg_list):
    return [MachineConfig().with_earlygen(eg) for eg in eg_list]


def _inline_records(trace, machines):
    return [
        stats_to_record(TimingSimulator(trace, m)._run_inline())
        for m in machines
    ]


# ---------------------------------------------------------------------------
# Parity: leader, follower, memo
# ---------------------------------------------------------------------------

@needs_numpy
def test_kernel_sweep_matches_inline_on_long_trace(big_trace):
    egs = [
        EarlyGenConfig(0, 0, SelectionMode.HARDWARE),
        EarlyGenConfig(16, 0, SelectionMode.HARDWARE),
        EarlyGenConfig(64, 0, SelectionMode.HARDWARE),
        EarlyGenConfig(16, 0, SelectionMode.HARDWARE, table_confidence_bits=2),
        EarlyGenConfig(0, 2, SelectionMode.COMPILER),
    ]
    machines = _sweep_machines(egs)
    before = precompute.replay_path_counts()
    stats = simulate_many(big_trace, machines)
    after = precompute.replay_path_counts()
    kernel_runs = sum(
        after.get(k, 0) - before.get(k, 0)
        for k in ("kernel-leader", "kernel-follower")
    )
    assert kernel_runs > 0, f"kernel path never engaged: {after}"
    for got, want in zip(
        (stats_to_record(s) for s in stats),
        _inline_records(big_trace, machines),
    ):
        assert got == want


@needs_numpy
def test_follower_repairs_distant_donor_exactly(monkeypatch):
    """Even a donor whose streams diverge wildly must be repaired into
    the exact schedule — never accepted approximately.  A small trace
    keeps every repair within the step budget, so the follower path is
    forced to carry arbitrarily distant donors all the way."""
    _eligible_kernel(monkeypatch)
    monkeypatch.setattr(replay_kernel, "_MAX_DIFF_FRAC", float("inf"))
    rng = random.Random(0xD0A0)
    followers = 0
    for _ in range(4):
        trace = execute(parse_asm(_random_asm(rng))).trace
        egs = [
            EarlyGenConfig(0, 0, SelectionMode.HARDWARE),
            EarlyGenConfig(16, 0, SelectionMode.HARDWARE),
            EarlyGenConfig(32, 0, SelectionMode.HARDWARE),
            EarlyGenConfig(0, 2, SelectionMode.COMPILER),
        ]
        machines = _sweep_machines(egs)
        before = precompute.replay_path_counts()
        stats = simulate_many(trace, machines)
        after = precompute.replay_path_counts()
        followers += after.get("kernel-follower", 0) - before.get(
            "kernel-follower", 0
        )
        for got, want in zip(
            (stats_to_record(s) for s in stats),
            _inline_records(trace, machines),
        ):
            assert got == want
    assert followers > 0, "no config took the follower path"


@needs_numpy
def test_random_kernels_match_inline_through_kernel(monkeypatch):
    _eligible_kernel(monkeypatch)
    rng = random.Random(0x7E57)
    for _ in range(4):
        trace = execute(parse_asm(_random_asm(rng))).trace
        egs = [
            EarlyGenConfig(16, 0, SelectionMode.HARDWARE),
            EarlyGenConfig(32, 0, SelectionMode.HARDWARE),
            EarlyGenConfig(16, 0, SelectionMode.HARDWARE,
                           table_confidence_bits=2),
            EarlyGenConfig(0, 2, SelectionMode.COMPILER),
        ]
        machines = _sweep_machines(egs)
        stats = simulate_many(trace, machines)
        for got, want in zip(
            (stats_to_record(s) for s in stats),
            _inline_records(trace, machines),
        ):
            assert got == want


def test_stats_memo_dedupes_identical_streams(small_trace):
    """The same stream tuple listed twice resolves from the stats memo
    — equal records, but independent SimStats objects."""
    eg = EarlyGenConfig(16, 0, SelectionMode.HARDWARE)
    machines = _sweep_machines([eg, eg])
    before = precompute.replay_path_counts()
    first, second = simulate_many(small_trace, machines)
    after = precompute.replay_path_counts()
    assert after.get("memo", 0) > before.get("memo", 0)
    assert stats_to_record(first) == stats_to_record(second)
    assert first is not second
    first.scheme_counts["__mutated__"] = 1
    assert "__mutated__" not in second.scheme_counts


# ---------------------------------------------------------------------------
# Divergence-patching edge cases
# ---------------------------------------------------------------------------

def _starved_machine(eg):
    return MachineConfig(
        mem_ports=1, dcache=CacheConfig(size=1024)
    ).with_earlygen(eg)


def _first_diverging(rng, eg):
    """A (trace, machine) pair whose replay needs exclusion patching."""
    for _ in range(12):
        trace = execute(parse_asm(_random_asm(rng))).trace
        machine = _starved_machine(eg)
        before = precompute.divergence_count()
        fast = precompute.try_fast(
            TimingSimulator(trace, machine), build=True
        )
        assert fast is not None
        if precompute.divergence_count() > before:
            return trace, machine
    raise AssertionError("seeds no longer produce divergence; rotate them")


def test_exclusion_set_flips_twice_across_runs(monkeypatch):
    """An ordinal excluded -> seeded un-excluded -> re-excluded must
    land on identical stats every time (the patch loop re-converges
    from any remembered starting point)."""
    _eligible_kernel(monkeypatch)
    eg = EarlyGenConfig(16, 0, SelectionMode.HARDWARE)
    trace, machine = _first_diverging(random.Random(0xF11B), eg)
    inline = stats_to_record(TimingSimulator(trace, machine)._run_inline())

    pre = precompute.get_precompute(trace, machine)
    sb = precompute._scheme_bytes(trace.program, eg, None)
    route = pre.route_for(sb)
    converged = pre.known_exclusions(eg, route)
    assert converged, "divergence should have recorded exclusions"

    # Flip 1: forget everything (seed the complement-of-knowledge).
    pre.remember_exclusions(eg, route, frozenset())
    pre._stats_memo.clear()
    rerun = precompute.try_fast(TimingSimulator(trace, machine), build=True)
    assert stats_to_record(rerun) == inline
    assert pre.known_exclusions(eg, route) == converged

    # Flip 2: seed garbage ordinals on top of the converged set.  Inert
    # ordinals (not wrong-address loads) cannot affect any stream, so
    # they may persist — the contract is exact stats and the genuine
    # exclusions kept.
    garbage = frozenset(range(min(8, pre.n_loads))) | converged
    pre.remember_exclusions(eg, route, garbage)
    pre._stats_memo.clear()
    rerun = precompute.try_fast(TimingSimulator(trace, machine), build=True)
    assert stats_to_record(rerun) == inline
    assert pre.known_exclusions(eg, route) >= converged


def test_patch_memo_collision_still_exact(monkeypatch):
    """A colliding patch-memo entry (same ``(table, conf, route)`` key
    written by a different config's convergence) only seeds the first
    attempt; the replay must re-converge to exact stats."""
    _eligible_kernel(monkeypatch)
    eg = EarlyGenConfig(16, 0, SelectionMode.HARDWARE)
    rng = random.Random(0xC0111)
    trace = execute(parse_asm(_random_asm(rng))).trace
    machine = _starved_machine(eg)
    inline = stats_to_record(TimingSimulator(trace, machine)._run_inline())

    pre = precompute.get_precompute(trace, machine)
    sb = precompute._scheme_bytes(trace.program, eg, None)
    route = pre.route_for(sb)
    # Simulate another config's convergence landing under our key.
    pre.remember_exclusions(
        eg, route, frozenset(range(pre.n_loads))
    )
    fast = precompute.try_fast(TimingSimulator(trace, machine), build=True)
    assert fast is not None
    assert stats_to_record(fast) == inline
    # A second EarlyGenConfig sharing the patch key replays exactly too.
    eg2 = EarlyGenConfig(16, 2, SelectionMode.COMPILER)
    key = pre._patch_key(eg, route)
    machine2 = _starved_machine(eg2)
    sb2 = precompute._scheme_bytes(trace.program, eg2, None)
    route2 = pre.route_for(sb2)
    if pre._patch_key(eg2, route2) == key:
        inline2 = stats_to_record(
            TimingSimulator(trace, machine2)._run_inline()
        )
        fast2 = precompute.try_fast(
            TimingSimulator(trace, machine2), build=True
        )
        assert stats_to_record(fast2) == inline2


@needs_numpy
def test_final_chunk_shorter_than_chunk_size(monkeypatch):
    """n not a multiple of the chunk size leaves a short final chunk;
    the chunk accounting and the replay must both handle it."""
    _eligible_kernel(monkeypatch)
    rng = random.Random(0x51A3)
    trace = execute(parse_asm(_random_asm(rng))).trace
    machine = MachineConfig().with_earlygen(
        EarlyGenConfig(16, 0, SelectionMode.HARDWARE)
    )
    machines = [machine] + _sweep_machines([
        EarlyGenConfig(32, 0, SelectionMode.HARDWARE),
        EarlyGenConfig(64, 0, SelectionMode.HARDWARE),
        EarlyGenConfig(0, 2, SelectionMode.COMPILER),
    ])
    pre = warm_precompute(
        trace, machine, [m.earlygen for m in machines],
    )
    assert pre is not None
    warm_kernel(pre, sweep=len(machines))
    ka = pre.kernel.arrays
    assert ka.n % replay_kernel._CHUNK != 0
    assert ka.n_chunks == -(-ka.n // replay_kernel._CHUNK)
    batched = simulate_many(trace, machines)
    for got, want in zip(
        (stats_to_record(s) for s in batched),
        _inline_records(trace, machines),
    ):
        assert got == want


# ---------------------------------------------------------------------------
# Gating: thresholds, disabled kernel, missing numpy
# ---------------------------------------------------------------------------

def test_short_trace_threshold_skips_precompute(small_trace, monkeypatch):
    """Below ``_PRECOMPUTE_MIN_N`` the stream path declines up front
    (the adpcm_encode regression fix) and the inline loop still
    produces the stats."""
    monkeypatch.setattr(precompute, "_PRECOMPUTE_MIN_N", 10**9)
    machine = MachineConfig().with_earlygen(
        EarlyGenConfig(16, 0, SelectionMode.HARDWARE)
    )
    assert warm_precompute(
        small_trace, machine, [machine.earlygen]
    ) is None
    assert precompute.try_fast(
        TimingSimulator(small_trace, machine), build=True
    ) is None
    before = precompute.replay_path_counts()
    (batched,) = simulate_many(small_trace, [machine])
    after = precompute.replay_path_counts()
    assert after.get("inline:short-trace", 0) > before.get(
        "inline:short-trace", 0
    )
    inline = stats_to_record(
        TimingSimulator(small_trace, machine)._run_inline()
    )
    assert stats_to_record(batched) == inline


def test_warm_kernel_degrades_to_zero():
    assert warm_kernel(None) == 0.0


@needs_numpy
def test_disabled_kernel_env_is_byte_identical(big_trace, monkeypatch):
    egs = [
        EarlyGenConfig(16, 0, SelectionMode.HARDWARE),
        EarlyGenConfig(32, 0, SelectionMode.HARDWARE),
        EarlyGenConfig(64, 0, SelectionMode.HARDWARE),
        EarlyGenConfig(0, 2, SelectionMode.COMPILER),
    ]
    machines = _sweep_machines(egs)
    with_kernel = [
        stats_to_record(s) for s in simulate_many(big_trace, machines)
    ]
    monkeypatch.setenv("REPRO_DISABLE_KERNEL", "1")
    assert not replay_kernel.kernel_available()
    # Fresh memo so the disabled run actually replays.
    pre = precompute.get_precompute(big_trace, machines[0])
    pre._stats_memo.clear()
    without = [
        stats_to_record(s) for s in simulate_many(big_trace, machines)
    ]
    assert with_kernel == without


def test_no_numpy_subprocess_is_byte_identical(tmp_path):
    """REPRO_NO_NUMPY=1 (import-level numpy removal) reproduces the
    same stats records as the kernel run, in a fresh interpreter."""
    script = r"""
import json, random, sys
from repro.isa import parse_asm
from repro.sim import precompute
from repro.sim.executor import execute
from repro.sim.machine import EarlyGenConfig, MachineConfig, SelectionMode
from repro.sim.precompute import simulate_many
sys.path.insert(0, {testdir!r})
from test_pipeline_parity import _random_asm
from golden_cases import stats_to_record

precompute._PRECOMPUTE_MIN_N = 0
trace = execute(parse_asm(_random_asm(random.Random(0x9A11)))).trace
machines = [
    MachineConfig().with_earlygen(EarlyGenConfig(16, 0, SelectionMode.HARDWARE)),
    MachineConfig().with_earlygen(EarlyGenConfig(32, 0, SelectionMode.HARDWARE)),
    MachineConfig().with_earlygen(EarlyGenConfig(64, 0, SelectionMode.HARDWARE)),
    MachineConfig().with_earlygen(EarlyGenConfig(0, 2, SelectionMode.COMPILER)),
]
print(json.dumps([stats_to_record(s) for s in simulate_many(trace, machines)]))
"""
    testdir = str(Path(__file__).resolve().parent)
    script = script.format(testdir=testdir)
    src = str(Path(__file__).resolve().parents[2] / "src")
    outputs = []
    for extra_env in ({}, {"REPRO_NO_NUMPY": "1"}):
        env = dict(os.environ, PYTHONPATH=src, **extra_env)
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
        )
        outputs.append(proc.stdout.strip().splitlines()[-1])
    assert outputs[0] == outputs[1]
