"""Timeline/debug-view tests."""

import pytest

from repro.isa import parse_asm
from repro.sim.executor import execute
from repro.sim.machine import EarlyGenConfig, MachineConfig, SelectionMode
from repro.sim.pipeline import TimingSimulator
from repro.sim.timeline import debug_run, render_timeline

PROGRAM = """
.data arr 400
main:
    lea r4, arr
    mov r6, 0
loop:
    ld_p r7, r4(0)
    add r5, r5, r7
    add r4, r4, 4
    add r6, r6, 1
    blt r6, 40, loop
    halt
"""


@pytest.fixture(scope="module")
def trace():
    return execute(parse_asm(PROGRAM)).trace


def test_timeline_disabled_by_default(trace):
    stats = TimingSimulator(trace, MachineConfig()).run()
    assert stats.timeline is None
    with pytest.raises(ValueError):
        render_timeline(trace, stats)


def test_timeline_records_every_instruction(trace):
    stats = TimingSimulator(
        trace, MachineConfig(), collect_timeline=True
    ).run()
    assert stats.timeline is not None
    assert len(stats.timeline) == len(trace)
    cycles = [cycle for _, cycle, _ in stats.timeline]
    assert cycles == sorted(cycles)  # in-order issue is monotone


def test_timeline_collection_does_not_change_timing(trace):
    plain = TimingSimulator(trace, MachineConfig()).run()
    collected = TimingSimulator(
        trace, MachineConfig(), collect_timeline=True
    ).run()
    assert plain.cycles == collected.cycles


def test_timeline_notes_early_gen_outcomes(trace):
    config = MachineConfig().with_earlygen(
        EarlyGenConfig(64, 0, SelectionMode.COMPILER)
    )
    stats = TimingSimulator(trace, config, collect_timeline=True).run()
    notes = [note for _, _, note in stats.timeline]
    assert any(note.startswith("p-hit") for note in notes)
    assert any(note == "branch" or note.startswith("branch") for note in notes)


def test_render_window(trace):
    stats = TimingSimulator(
        trace, MachineConfig(), collect_timeline=True
    ).run()
    text = render_timeline(trace, stats, start=2, count=8)
    assert "cycle" in text
    assert text.count("\n") == 9  # header + rule + 8 rows
    assert "ld_" in text


def test_debug_run_helper(trace):
    text = debug_run(trace, count=12)
    assert text.startswith("cycles=")
    assert "ipc=" in text
    assert "ld_" in text
