"""Counter-semantics contract of the cache and prediction-table models.

The stream-precompute fast path (:mod:`repro.sim.precompute`) does not
replay the tag arrays inside the timing loop — it reconstructs
``SimStats`` cache counters from precomputed totals.  That is only
sound under the documented counter semantics of
:mod:`repro.sim.cache` and :mod:`repro.sim.stride_table`:

* ``accesses == hits + misses`` at all times, with ``probe``
  non-counting and non-allocating;
* ``access`` counts one hit or miss and allocates on a miss;
* ``write_access`` counts one hit or miss and never fills;
* every table ``probe`` counts one probe and at most one of
  prediction/suppressed; ``update`` advances the state machine
  unconditionally per routed load, independent of dispatch timing.

These tests pin the semantics at the unit level and then pin that both
simulator paths report identical access/hit counters on a real trace.
"""

from __future__ import annotations

import random
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.isa import parse_asm
from repro.sim import precompute
from repro.sim.cache import DirectMappedCache, SetAssociativeCache
from repro.sim.executor import execute
from repro.sim.machine import (
    CacheConfig,
    EarlyGenConfig,
    MachineConfig,
    SelectionMode,
)
from repro.sim.pipeline import TimingSimulator
from repro.sim.stride_table import AddressPredictionTable

from golden_cases import stats_to_record
from test_pipeline_parity import _random_asm


def _block(cache, n: int) -> int:
    """Address of the n-th block (so addresses conflict predictably)."""
    return n * cache.config.block_size


def test_direct_mapped_counter_identity():
    cache = DirectMappedCache(CacheConfig(size=256, block_size=64, ways=1))
    assert type(cache) is DirectMappedCache
    assert cache.accesses == 0

    assert cache.access(_block(cache, 0)) is False      # cold miss, fills
    assert cache.access(_block(cache, 0)) is True       # hit
    assert cache.write_access(_block(cache, 1)) is False  # store miss ...
    assert cache.access(_block(cache, 1)) is False      # ... did not fill
    assert cache.write_access(_block(cache, 1)) is True   # read fill did
    assert (cache.hits, cache.misses) == (2, 3)
    assert cache.accesses == cache.hits + cache.misses == 5


def test_direct_mapped_probe_is_neutral():
    cache = DirectMappedCache(CacheConfig(size=256, block_size=64, ways=1))
    assert cache.probe(_block(cache, 0)) is False
    assert (cache.hits, cache.misses, cache.accesses) == (0, 0, 0)
    assert cache.access(_block(cache, 0)) is False  # probe did not allocate
    before = (cache.hits, cache.misses)
    for _ in range(10):
        cache.probe(_block(cache, 0))
        cache.probe(_block(cache, 7))
    assert (cache.hits, cache.misses) == before
    assert cache.access(_block(cache, 0)) is True


def test_set_associative_counter_identity_and_lru():
    cache = DirectMappedCache(CacheConfig(size=512, block_size=64, ways=2))
    assert isinstance(cache, SetAssociativeCache)
    sets = cache.config.num_sets
    a, b, c = (_block(cache, n * sets) for n in range(3))  # same set

    assert cache.access(a) is False
    assert cache.access(b) is False
    assert cache.access(a) is True     # refreshes LRU: b is now oldest
    assert cache.access(c) is False    # evicts b
    assert cache.probe(b) is False
    assert cache.probe(a) is True
    # A write hit refreshes LRU like a read hit; a write miss never
    # fills and never evicts.
    assert cache.write_access(a) is True
    assert cache.write_access(b) is False
    assert cache.probe(c) is True
    assert cache.access(b) is False    # evicts c (a was refreshed)
    assert cache.probe(c) is False
    assert cache.accesses == cache.hits + cache.misses == 7


def test_table_probe_counts_exactly_once():
    table = AddressPredictionTable(16)
    assert table.probe(0x40) is None           # cold: probe, no tag hit
    assert (table.probes, table.tag_hits) == (1, 0)
    table.update(0x40, 1000)                   # Replace arc: functioning
    assert table.probe(0x40) == 1000           # constant-address predict
    assert (table.probes, table.tag_hits, table.predictions) == (2, 1, 1)
    table.update(0x40, 1000, predicted=1000)
    assert table.correct == 1
    # New_Stride drops to learning: tag hit but no prediction.
    table.update(0x40, 1064, predicted=table.probe(0x40))
    assert table.probe(0x40) is None
    assert table.tag_hits == table.probes - 1  # only the cold probe missed
    assert table.predictions + table.suppressed < table.probes


def test_table_update_is_unconditional_per_routed_load():
    """The table evolves identically whether or not a prediction was
    dispatched — dispatch is a port question, not a table question."""
    dispatched = AddressPredictionTable(16)
    starved = AddressPredictionTable(16)
    addresses = [1000 + 8 * n for n in range(6)]
    for ca in addresses:
        pred = dispatched.probe(0x40)
        dispatched.update(0x40, ca, predicted=pred)
        starved.probe(0x40)
        starved.update(0x40, ca, predicted=None)  # probe result unused
    assert dispatched.probes == starved.probes
    assert dispatched.tag_hits == starved.tag_hits
    assert dispatched.predictions == starved.predictions
    entry_a = dispatched._table[dispatched._split(0x40)[0]]
    entry_b = starved._table[starved._split(0x40)[0]]
    assert (entry_a.pa, entry_a.st, entry_a.stc, entry_a.state) == (
        entry_b.pa, entry_b.st, entry_b.stc, entry_b.state
    )
    # Only the statistics-side `correct` counter may differ.
    assert starved.correct == 0


def test_suppressed_predictions_still_count_probes():
    table = AddressPredictionTable(16, confidence_bits=2)
    table.update(0x40, 1000)
    # Drive the counter below the midpoint with mispredictions.
    for ca in (2000, 3000, 5000, 7000, 11000):
        table.probe(0x40)
        table.update(0x40, ca)
    before = table.probes
    result = table.probe(0x40)
    assert table.probes == before + 1
    assert result is None
    assert table.predictions + table.suppressed + (
        table.probes - table.tag_hits
    ) <= table.probes


@pytest.mark.parametrize("ways", (1, 2))
def test_both_paths_report_identical_cache_counters(ways):
    """Regression: precomputed and inline paths must report identical
    ``dcache_hits``/``dcache_misses`` (and every other counter)."""
    rng = random.Random(0xCAFE)
    trace = execute(parse_asm(_random_asm(rng))).trace
    machine = MachineConfig(
        mem_ports=1,
        dcache=CacheConfig(size=1024, ways=ways),
    ).with_earlygen(EarlyGenConfig(16, 0, SelectionMode.HARDWARE))

    inline = TimingSimulator(trace, machine)._run_inline()
    fast = precompute.try_fast(TimingSimulator(trace, machine), build=True)
    assert fast is not None, "config unexpectedly ineligible for fast path"

    assert fast.dcache_hits == inline.dcache_hits
    assert fast.dcache_misses == inline.dcache_misses
    assert fast.icache_misses == inline.icache_misses
    assert stats_to_record(fast) == stats_to_record(inline)
