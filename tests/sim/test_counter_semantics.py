"""Counter-semantics contract of the cache and prediction-table models.

The stream-precompute fast path (:mod:`repro.sim.precompute`) does not
replay the tag arrays inside the timing loop — it reconstructs
``SimStats`` cache counters from precomputed totals.  That is only
sound under the documented counter semantics of
:mod:`repro.sim.cache` and :mod:`repro.sim.stride_table`:

* ``accesses == hits + misses`` at all times, with ``probe``
  non-counting and non-allocating;
* ``access`` counts one hit or miss and allocates on a miss;
* ``write_access`` counts one hit or miss and never fills;
* every table ``probe`` counts one probe and at most one of
  prediction/suppressed; ``update`` advances the state machine
  unconditionally per routed load, independent of dispatch timing.

These tests pin the semantics at the unit level and then pin that both
simulator paths report identical access/hit counters on a real trace.
"""

from __future__ import annotations

import random
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.isa import parse_asm
from repro.sim import precompute
from repro.sim.cache import DirectMappedCache, SetAssociativeCache
from repro.sim.executor import execute
from repro.sim.machine import (
    CacheConfig,
    EarlyGenConfig,
    MachineConfig,
    SelectionMode,
)
from repro.sim.pipeline import TimingSimulator
from repro.sim.stride_table import AddressPredictionTable

from golden_cases import stats_to_record
from test_pipeline_parity import _random_asm


def _block(cache, n: int) -> int:
    """Address of the n-th block (so addresses conflict predictably)."""
    return n * cache.config.block_size


def test_direct_mapped_counter_identity():
    cache = DirectMappedCache(CacheConfig(size=256, block_size=64, ways=1))
    assert type(cache) is DirectMappedCache
    assert cache.accesses == 0

    assert cache.access(_block(cache, 0)) is False      # cold miss, fills
    assert cache.access(_block(cache, 0)) is True       # hit
    assert cache.write_access(_block(cache, 1)) is False  # store miss ...
    assert cache.access(_block(cache, 1)) is False      # ... did not fill
    assert cache.write_access(_block(cache, 1)) is True   # read fill did
    assert (cache.hits, cache.misses) == (2, 3)
    assert cache.accesses == cache.hits + cache.misses == 5


def test_direct_mapped_probe_is_neutral():
    cache = DirectMappedCache(CacheConfig(size=256, block_size=64, ways=1))
    assert cache.probe(_block(cache, 0)) is False
    assert (cache.hits, cache.misses, cache.accesses) == (0, 0, 0)
    assert cache.access(_block(cache, 0)) is False  # probe did not allocate
    before = (cache.hits, cache.misses)
    for _ in range(10):
        cache.probe(_block(cache, 0))
        cache.probe(_block(cache, 7))
    assert (cache.hits, cache.misses) == before
    assert cache.access(_block(cache, 0)) is True


def test_set_associative_counter_identity_and_lru():
    cache = DirectMappedCache(CacheConfig(size=512, block_size=64, ways=2))
    assert isinstance(cache, SetAssociativeCache)
    sets = cache.config.num_sets
    a, b, c = (_block(cache, n * sets) for n in range(3))  # same set

    assert cache.access(a) is False
    assert cache.access(b) is False
    assert cache.access(a) is True     # refreshes LRU: b is now oldest
    assert cache.access(c) is False    # evicts b
    assert cache.probe(b) is False
    assert cache.probe(a) is True
    # A write hit refreshes LRU like a read hit; a write miss never
    # fills and never evicts.
    assert cache.write_access(a) is True
    assert cache.write_access(b) is False
    assert cache.probe(c) is True
    assert cache.access(b) is False    # evicts c (a was refreshed)
    assert cache.probe(c) is False
    assert cache.accesses == cache.hits + cache.misses == 7


def test_table_probe_counts_exactly_once():
    table = AddressPredictionTable(16)
    assert table.probe(0x40) is None           # cold: probe, no tag hit
    assert (table.probes, table.tag_hits) == (1, 0)
    table.update(0x40, 1000)                   # Replace arc: functioning
    assert table.probe(0x40) == 1000           # constant-address predict
    assert (table.probes, table.tag_hits, table.predictions) == (2, 1, 1)
    table.update(0x40, 1000, predicted=1000)
    assert table.correct == 1
    # New_Stride drops to learning: tag hit but no prediction.
    table.update(0x40, 1064, predicted=table.probe(0x40))
    assert table.probe(0x40) is None
    assert table.tag_hits == table.probes - 1  # only the cold probe missed
    assert table.predictions + table.suppressed < table.probes


def test_table_update_is_unconditional_per_routed_load():
    """The table evolves identically whether or not a prediction was
    dispatched — dispatch is a port question, not a table question."""
    dispatched = AddressPredictionTable(16)
    starved = AddressPredictionTable(16)
    addresses = [1000 + 8 * n for n in range(6)]
    for ca in addresses:
        pred = dispatched.probe(0x40)
        dispatched.update(0x40, ca, predicted=pred)
        starved.probe(0x40)
        starved.update(0x40, ca, predicted=None)  # probe result unused
    assert dispatched.probes == starved.probes
    assert dispatched.tag_hits == starved.tag_hits
    assert dispatched.predictions == starved.predictions
    entry_a = dispatched._table[dispatched._split(0x40)[0]]
    entry_b = starved._table[starved._split(0x40)[0]]
    assert (entry_a.pa, entry_a.st, entry_a.stc, entry_a.state) == (
        entry_b.pa, entry_b.st, entry_b.stc, entry_b.state
    )
    # Only the statistics-side `correct` counter may differ.
    assert starved.correct == 0


def test_suppressed_predictions_still_count_probes():
    table = AddressPredictionTable(16, confidence_bits=2)
    table.update(0x40, 1000)
    # Drive the counter below the midpoint with mispredictions.
    for ca in (2000, 3000, 5000, 7000, 11000):
        table.probe(0x40)
        table.update(0x40, ca)
    before = table.probes
    result = table.probe(0x40)
    assert table.probes == before + 1
    assert result is None
    assert table.predictions + table.suppressed + (
        table.probes - table.tag_hits
    ) <= table.probes


@pytest.mark.parametrize("ways", (1, 2))
def test_both_paths_report_identical_cache_counters(ways):
    """Regression: precomputed and inline paths must report identical
    ``dcache_hits``/``dcache_misses`` (and every other counter)."""
    rng = random.Random(0xCAFE)
    trace = execute(parse_asm(_random_asm(rng))).trace
    machine = MachineConfig(
        mem_ports=1,
        dcache=CacheConfig(size=1024, ways=ways),
    ).with_earlygen(EarlyGenConfig(16, 0, SelectionMode.HARDWARE))

    inline = TimingSimulator(trace, machine)._run_inline()
    fast = precompute.try_fast(TimingSimulator(trace, machine), build=True)
    assert fast is not None, "config unexpectedly ineligible for fast path"

    assert fast.dcache_hits == inline.dcache_hits
    assert fast.dcache_misses == inline.dcache_misses
    assert fast.icache_misses == inline.icache_misses
    assert stats_to_record(fast) == stats_to_record(inline)


# ---------------------------------------------------------------------------
# Backend-generic contract suite: every registered predictor backend
# must satisfy the same probe/update semantics the precompute fast path
# assumes (one probe per routed load, at most one of
# prediction/suppressed, update unconditional, timing-independence).
# ---------------------------------------------------------------------------

from repro.sim.predictors import (  # noqa: E402
    backend_names,
    create as create_predictor,
    predictor_key,
)

BACKENDS = backend_names()


def _eg(backend: str, entries: int = 16) -> EarlyGenConfig:
    return EarlyGenConfig(entries, 0, SelectionMode.HARDWARE,
                          predictor=backend)


def _routed_loads(n: int = 300):
    """A deterministic (pc, ca, demand_hit) stream with mixed behavior:
    strided PCs, a constant-address PC, an erratic PC, and tag-conflict
    aliases, so every backend exercises predict/suppress/realloc arcs.
    """
    loads = []
    for i in range(n):
        k = i % 4
        if k == 0:
            pc, ca = 0x40, 1000 + (i // 4) * 8      # clean stride
        elif k == 1:
            pc, ca = 0x80, 5000                      # constant address
        elif k == 2:
            pc, ca = 0xC0, (i * 2654435761) % 65536  # erratic
        else:
            pc, ca = 0x40 + 16 * 64 * 4, 2000 + i    # aliases 0x40's set
        loads.append((pc, ca, (i * 7) % 3 != 0))
    return loads


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_probe_counts_exactly_once(backend):
    p = create_predictor(_eg(backend))
    for pc, ca, dh in _routed_loads():
        before = (p.probes, p.predictions, p.suppressed)
        predicted = p.probe(pc)
        assert p.probes == before[0] + 1
        d_pred = p.predictions - before[1]
        d_supp = p.suppressed - before[2]
        assert d_pred >= 0 and d_supp >= 0
        assert d_pred + d_supp <= 1
        # A probe that returned an address counted it as a prediction.
        assert (d_pred == 1) == (predicted is not None)
        p.update(pc, ca, predicted, demand_hit=dh)


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_update_unconditional(backend):
    """Internal state must evolve identically whether or not the
    prediction dispatched (``predicted=None`` models a starved port);
    only the statistics-side ``correct`` counter may differ."""
    dispatched = create_predictor(_eg(backend))
    starved = create_predictor(_eg(backend))
    outputs_d, outputs_s = [], []
    for pc, ca, dh in _routed_loads():
        pred_d = dispatched.probe(pc)
        outputs_d.append(pred_d)
        dispatched.update(pc, ca, pred_d, demand_hit=dh)
        outputs_s.append(starved.probe(pc))
        starved.update(pc, ca, None, demand_hit=dh)
    assert outputs_d == outputs_s
    assert dispatched.probes == starved.probes
    assert dispatched.predictions == starved.predictions
    assert dispatched.suppressed == starved.suppressed
    assert starved.correct == 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_timing_independence_and_reset(backend):
    """The probe/update outcome stream is a pure function of the
    (pc, ca, demand) sequence: a fresh instance and a reset instance
    replay it identically."""
    loads = _routed_loads()

    def run(p):
        out = []
        for pc, ca, dh in loads:
            pred = p.probe(pc)
            out.append(pred)
            p.update(pc, ca, pred, demand_hit=dh)
        return out

    fresh = create_predictor(_eg(backend))
    first = run(fresh)
    reused = create_predictor(_eg(backend))
    run(reused)
    reused.reset()
    assert run(reused) == first
    assert (reused.probes, reused.predictions, reused.suppressed) == (
        fresh.probes, fresh.predictions, fresh.suppressed
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_params_key_matches_registry(backend):
    eg = _eg(backend)
    p = create_predictor(eg)
    assert p.params_key() == predictor_key(eg)
    assert predictor_key(eg) == predictor_key(_eg(backend))  # stable


@pytest.mark.parametrize("backend", BACKENDS)
def test_both_paths_identical_counters_per_backend(backend):
    """The stream path must reproduce the inline path byte-identically
    for every registered backend, not just stride."""
    rng = random.Random(0xBEEF)
    trace = execute(parse_asm(_random_asm(rng))).trace
    machine = MachineConfig(mem_ports=1).with_earlygen(_eg(backend))
    inline = TimingSimulator(trace, machine)._run_inline()
    fast = precompute.try_fast(TimingSimulator(trace, machine), build=True)
    assert fast is not None, "config unexpectedly ineligible for fast path"
    assert stats_to_record(fast) == stats_to_record(inline)


# ---------------------------------------------------------------------------
# Stride-table index/tag split: probe and update must agree through the
# single _split helper, for any PC the front end can produce.
# ---------------------------------------------------------------------------

ADVERSARIAL_PCS = (
    0x0,                      # index 0, tag 0
    0x40,                     # ordinary text address
    0x7FFF_FFFC,              # high bits all set (31-bit text)
    0xFFFF_FFFC,              # 32-bit wraparound territory
    0x1_0000_0040,            # beyond 32 bits entirely
    0x40_0000_0000 + 0x40,    # tag far wider than the index
    0x42,                     # non-word-aligned (low bits dropped)
    0x7FFF_FFFE,              # non-word-aligned + high bits
    (16 << 2),                # pc whose word index == table size
    (16 << 2) | 3,            # same, with alignment garbage
)


@pytest.mark.parametrize("pc", ADVERSARIAL_PCS)
def test_probe_and_update_agree_on_index_and_tag(pc):
    table = AddressPredictionTable(16)
    table.update(pc, 9000)          # allocate via update's split
    assert table.probe(pc) == 9000  # found via probe's split: same entry
    assert table.tag_hits == 1
    index, tag = table._split(pc)
    entry = table._table[index]
    assert entry is not None and entry.tag == tag
    # Word-aligned aliases of the same word map to the same entry;
    # a PC one full word away must not.
    assert table._split(pc | 3) == (index, tag)
    assert table._split(pc + 4) != (index, tag)


def test_update_then_probe_roundtrip_over_dense_pcs():
    """No (index, tag) drift anywhere across a dense PC range covering
    several wraps of the index space."""
    table = AddressPredictionTable(16)
    for word in range(0, 16 * 5):
        pc = word << 2
        table.update(pc, 1234)
        assert table.probe(pc) == 1234


# ---------------------------------------------------------------------------
# Confidence-counter boundary semantics at 1 and 8 bits (documented in
# AddressPredictionTable's docstring: init = midpoint + 1, suppression
# at or below the midpoint).
# ---------------------------------------------------------------------------

def test_confidence_boundary_one_bit():
    table = AddressPredictionTable(16, confidence_bits=1)
    assert table._conf_max == 1 and table._conf_init == 1
    table.update(0x40, 1000)             # fresh allocation: counter = 1
    # init == max at one bit: a fresh entry is trusted immediately.
    assert table.probe(0x40) == 1000
    assert table.suppressed == 0
    # One miss (functioning, PA != CA) decrements to 0 ...
    table.update(0x40, 2000)
    # ... the entry drops to learning; re-verify the stride first:
    table.update(0x40, 3000)             # Verified_Stride (st=1000)
    assert table._conf[table._split(0x40)[0]] == 0
    # ... and now the functioning entry is suppressed at counter 0.
    assert table.probe(0x40) is None
    assert table.suppressed == 1
    # One verified prediction re-arms it.
    table.update(0x40, 4000)             # PA == CA: counter back to 1
    assert table.probe(0x40) == 5000
    assert table.suppressed == 1


def test_confidence_boundary_eight_bits():
    table = AddressPredictionTable(16, confidence_bits=8)
    assert table._conf_max == 255 and table._conf_init == 128
    table.update(0x40, 1000)             # counter = 128: weakly trusted
    assert table.probe(0x40) == 1000
    assert table.suppressed == 0
    # A single miss crosses the boundary: 127 <= midpoint suppresses.
    table.update(0x40, 2000)
    table.update(0x40, 3000)             # re-verify (functioning again)
    assert table._conf[table._split(0x40)[0]] == 127
    assert table.probe(0x40) is None
    assert table.suppressed == 1
    # A single hit re-crosses it: 128 > midpoint predicts again.
    table.update(0x40, 4000)
    assert table.probe(0x40) == 5000
    # Saturation: long runs of hits never exceed _conf_max.
    for n in range(300):
        table.update(0x40, 5000 + n * 1000, predicted=table.probe(0x40))
    assert table._conf[table._split(0x40)[0]] <= 255
