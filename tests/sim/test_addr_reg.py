"""R_addr and BRIC-style register cache tests."""

import pytest

from repro.sim.addr_reg import RAddr, RegisterCache


class TestRAddr:
    def test_unbound_misses(self):
        r = RAddr()
        assert not r.probe(5)

    def test_bind_then_hit(self):
        r = RAddr()
        r.bind(5)
        assert r.probe(5)
        assert not r.probe(6)

    def test_binding_switch(self):
        """A load that just switched the binding cannot itself hit —
        the paper's "binding has just been switched" hazard."""
        r = RAddr()
        r.bind(5)
        # a load with base r6 probes (miss), then rebinds
        assert not r.probe(6)
        r.bind(6)
        assert r.probe(6)
        assert not r.probe(5)

    def test_binding_count(self):
        r = RAddr()
        r.bind(5)
        r.bind(5)  # same register: not a switch
        r.bind(7)
        assert r.bindings == 2

    def test_reset(self):
        r = RAddr()
        r.bind(5)
        r.reset()
        assert r.bound is None
        assert not r.probe(5)


class TestRegisterCache:
    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            RegisterCache(0)

    def test_insert_and_probe(self):
        c = RegisterCache(2)
        c.insert(1)
        c.insert(2)
        assert c.probe(1) and c.probe(2)
        assert not c.probe(3)

    def test_lru_eviction(self):
        c = RegisterCache(2)
        c.insert(1)
        c.insert(2)
        c.probe(1)  # refresh 1 -> 2 is now LRU
        c.insert(3)
        assert 2 not in c
        assert 1 in c and 3 in c

    def test_insert_existing_refreshes(self):
        c = RegisterCache(2)
        c.insert(1)
        c.insert(2)
        c.insert(1)  # refresh, no eviction
        c.insert(3)  # evicts 2
        assert 1 in c and 3 in c and 2 not in c

    def test_capacity_one_behaves_like_raddr(self):
        c = RegisterCache(1)
        c.insert(5)
        assert c.probe(5)
        c.insert(6)
        assert not c.probe(5)
        assert c.probe(6)

    def test_len(self):
        c = RegisterCache(4)
        for r in (1, 2, 3):
            c.insert(r)
        assert len(c) == 3

    def test_hit_miss_counters(self):
        c = RegisterCache(2)
        c.insert(1)
        c.probe(1)
        c.probe(9)
        assert (c.hits, c.misses) == (1, 1)
