"""Flat-memory model tests."""

import pytest

from repro.isa import DataItem, Function, Instruction, Opcode, Program
from repro.sim.memory import (
    DEFAULT_MEM_SIZE,
    HEAP_BASE,
    Memory,
    MemoryError_,
    initial_sp,
    load_program,
)


def test_word_round_trip():
    mem = Memory(4096)
    mem.store_word(100, 0x12345678)
    assert mem.load_word(100) == 0x12345678


def test_word_sign_extension():
    mem = Memory(4096)
    mem.store_word(0, -1)
    assert mem.load_word(0) == -1
    mem.store_word(4, 0x80000000)
    assert mem.load_word(4) == -(1 << 31)


def test_little_endian_layout():
    mem = Memory(4096)
    mem.store_word(0, 0x0A0B0C0D)
    assert mem.load_byte(0) == 0x0D
    assert mem.load_byte(3) == 0x0A


def test_byte_round_trip():
    mem = Memory(4096)
    mem.store_byte(7, 0x1FF)  # masked to 8 bits
    assert mem.load_byte(7) == 0xFF


def test_double_round_trip():
    mem = Memory(4096)
    mem.store_double(16, 3.14159)
    assert mem.load_double(16) == 3.14159


def test_bounds_checks():
    mem = Memory(64)
    with pytest.raises(MemoryError_):
        mem.load_word(62)
    with pytest.raises(MemoryError_):
        mem.store_word(-4, 0)
    with pytest.raises(MemoryError_):
        mem.load_byte(64)
    with pytest.raises(MemoryError_):
        mem.store_double(60, 1.0)


def test_bulk_access():
    mem = Memory(64)
    mem.write_bytes(8, b"hello")
    assert mem.read_bytes(8, 5) == b"hello"
    with pytest.raises(MemoryError_):
        mem.write_bytes(62, b"abc")


def test_load_program_initializes_data():
    p = Program()
    f = Function("main")
    f.append(Instruction(Opcode.HALT))
    p.add_function(f)
    p.add_data(DataItem("tbl", 8, init=[7, 9]))
    mem = load_program(p)
    addr = p.data_addr("tbl")
    assert mem.load_word(addr) == 7
    assert mem.load_word(addr + 4) == 9


def test_initial_sp_alignment():
    sp = initial_sp(DEFAULT_MEM_SIZE)
    assert sp % 16 == 0
    assert sp < DEFAULT_MEM_SIZE
    assert sp > HEAP_BASE
