"""SimStats accounting tests."""

import pytest

from repro.sim.stats import SimStats


def test_ipc():
    stats = SimStats(cycles=100, instructions=250)
    assert stats.ipc == 2.5
    assert SimStats().ipc == 0.0


def test_speedup_over():
    base = SimStats(cycles=300)
    fast = SimStats(cycles=200)
    assert fast.speedup_over(base) == pytest.approx(1.5)
    with pytest.raises(ValueError):
        SimStats(cycles=0).speedup_over(base)


def test_summary_mentions_key_counters():
    stats = SimStats(
        cycles=1000,
        instructions=900,
        loads=100,
        stores=50,
        dcache_hits=90,
        dcache_misses=10,
        pred_loads=40,
        pred_spec_dispatched=35,
        pred_success=30,
        calc_loads=20,
        calc_spec_dispatched=18,
        calc_success=15,
    )
    text = stats.summary()
    assert "1000" in text
    assert "predict path" in text
    assert "early-calc path" in text
    assert "0.900" in text  # IPC


def test_summary_omits_unused_paths():
    text = SimStats(cycles=10, instructions=10).summary()
    assert "predict path" not in text
    assert "early-calc path" not in text
