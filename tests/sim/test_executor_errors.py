"""EmulationError paths of the functional emulator.

Every illegal-execution condition must surface as an
:class:`~repro.errors.EmulationError` (or a subclass) with enough
context for the harness to degrade the workload into an ERROR row.
"""

import pytest

from repro.errors import EmulationError, ReproError, StepLimitExceeded
from repro.isa import Function, Imm, Instruction, Opcode, Program, Reg
from repro.sim.executor import Executor, execute


def build(items):
    p = Program()
    f = Function("main")
    for item in items:
        f.append(item)
    p.add_function(f)
    p.layout()
    return p


def I(op, dest=None, srcs=(), target=None):  # noqa: E743
    return Instruction(op, dest, srcs, target)


def test_division_by_zero():
    program = build(
        [
            I(Opcode.MOV, Reg(1), [Imm(7)]),
            I(Opcode.DIV, Reg(2), [Reg(1), Imm(0)]),
            I(Opcode.HALT),
        ]
    )
    with pytest.raises(EmulationError, match="division by zero"):
        execute(program)


def test_remainder_by_zero():
    program = build(
        [
            I(Opcode.REM, Reg(2), [Imm(7), Imm(0)]),
            I(Opcode.HALT),
        ]
    )
    with pytest.raises(EmulationError, match="division by zero"):
        execute(program)


def test_fp_division_by_zero():
    program = build(
        [
            I(Opcode.FDIV, Reg(1, bank="fp"),
              [Reg(2, bank="fp"), Reg(3, bank="fp")]),
            I(Opcode.HALT),
        ]
    )
    with pytest.raises(EmulationError, match="fp division by zero"):
        execute(program)


def test_load_out_of_range():
    program = build(
        [
            I(Opcode.MOV, Reg(1), [Imm(-5000)]),
            I(Opcode.LD, Reg(2), [Reg(1), Imm(0)]),
            I(Opcode.HALT),
        ]
    )
    with pytest.raises(EmulationError, match="load out of range"):
        execute(program)


def test_store_out_of_range():
    program = build(
        [
            I(Opcode.MOV, Reg(1), [Imm(1 << 30)]),
            I(Opcode.ST, None, [Imm(1), Reg(1), Imm(0)]),
            I(Opcode.HALT),
        ]
    )
    with pytest.raises(EmulationError, match="store out of range"):
        execute(program)


def test_virtual_register_rejected_at_precompile():
    program = build(
        [
            I(Opcode.MOV, Reg(1, virtual=True), [Imm(1)]),
            I(Opcode.HALT),
        ]
    )
    with pytest.raises(EmulationError, match="virtual register"):
        Executor(program)


def test_bad_operand_rejected_at_precompile():
    program = build(
        [
            I(Opcode.MOV, Reg(1), ["not-an-operand"]),
            I(Opcode.HALT),
        ]
    )
    with pytest.raises(EmulationError, match="bad operand"):
        Executor(program)


def test_empty_program():
    p = Program()
    p.add_function(Function("main"))
    p.layout()
    with pytest.raises(EmulationError, match="empty program"):
        execute(p)


def test_step_limit_raises_subclass_with_context():
    # JMP back to the function label: an intentional infinite loop.
    program = build([I(Opcode.JMP, target="main")])
    with pytest.raises(StepLimitExceeded) as info:
        Executor(program).run(max_steps=100)
    err = info.value
    assert isinstance(err, EmulationError)
    assert isinstance(err, ReproError)
    assert err.limit == 100
    assert err.steps == 100
    assert err.last_pc == 0
    assert "step limit exceeded" in str(err)
    assert "pc=0" in str(err)


def test_step_limit_constructor_budget():
    program = build([I(Opcode.JMP, target="main")])
    with pytest.raises(StepLimitExceeded):
        Executor(program, max_steps=50).run()


def test_generous_limit_does_not_trip():
    program = build(
        [
            I(Opcode.OUT, None, [Imm(3)]),
            I(Opcode.HALT),
        ]
    )
    assert Executor(program).run(max_steps=10).output == [3]
