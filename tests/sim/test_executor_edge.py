"""Executor edge cases: FP faults, control-flow corners, determinism."""

import pytest

from repro.isa import (
    DataItem,
    Function,
    Imm,
    Instruction,
    Label,
    Opcode,
    Program,
    Reg,
    Sym,
    parse_asm,
)
from repro.sim.executor import EmulationError, Executor, execute


def I(op, dest=None, srcs=(), target=None):  # noqa: E743
    return Instruction(op, dest, srcs, target)


def test_fp_division_by_zero_raises():
    import struct

    p = Program()
    f = Function("main")
    f.append(I(Opcode.FLD, Reg(1, "fp"), [Reg(0), Sym("z")]))
    f.append(I(Opcode.CVTIF, Reg(2, "fp"), [Imm(1)]))
    f.append(I(Opcode.FDIV, Reg(3, "fp"), [Reg(2, "fp"), Reg(1, "fp")]))
    f.append(I(Opcode.HALT))
    p.add_function(f)
    p.add_data(DataItem("z", 8, init=struct.pack("<d", 0.0), align=8))
    p.layout()
    with pytest.raises(EmulationError):
        Executor(p).run()


def test_cvtfi_truncates_toward_zero():
    program = parse_asm(
        """
        .data c 8
        main:
            mov r1, -11
            cvtif f1, r1
            cvtif f2, 4
            fdiv f3, f1, f2       ; -2.75
            cvtfi r2, f3
            out r2
            halt
        """
    )
    assert execute(program).output == [-2]


def test_empty_program_rejected():
    p = Program()
    p.add_function(Function("main"))
    p.layout()
    with pytest.raises(EmulationError):
        Executor(p).run()


def test_unconditional_forward_and_backward_jumps():
    program = parse_asm(
        """
        main:
            jmp fwd
        back:
            out r5
            halt
        fwd:
            mov r5, 3
            jmp back
        """
    )
    assert execute(program).output == [3]


def test_byte_store_masks_value():
    program = parse_asm(
        """
        .data b 4
        main:
            lea r4, b
            mov r5, 511
            stb r5, r4(0)
            ldb_n r6, r4(0)
            out r6
            halt
        """
    )
    assert execute(program).output == [255]


def test_sym_plus_offset_operand():
    program = parse_asm(
        """
        .data words 12 = 5 6 7
        main:
            ld_n r1, r0(words+8)
            out r1
            halt
        """
    )
    assert execute(program).output == [7]


def test_call_chain_depth():
    # a -> b -> c, return values threaded back up
    program = parse_asm(
        """
        .entry main
        .func main
        main:
            mov r2, 1
            call a
            out r1
            halt
        .func a
        a:
            sub sp, sp, 16
            st ra, sp(0)
            add r2, r2, 10
            call b
            ld_n ra, sp(0)
            add sp, sp, 16
            ret
        .func b
        b:
            sub sp, sp, 16
            st ra, sp(0)
            add r2, r2, 100
            call c
            ld_n ra, sp(0)
            add sp, sp, 16
            ret
        .func c
        c:
            add r1, r2, 1000
            ret
        """
    )
    assert execute(program).output == [1111]


def test_max_steps_override_per_run():
    program = parse_asm(
        """
        main:
            mov r1, 0
        spin:
            add r1, r1, 1
            blt r1, 100000, spin
            halt
        """
    )
    ex = Executor(program)
    with pytest.raises(EmulationError):
        ex.run(max_steps=10)
    # the same executor still completes with the default budget
    assert ex.run().steps > 100000


def test_memory_isolated_between_runs():
    program = parse_asm(
        """
        .data cell 4 = 1
        main:
            ld_n r1, r0(cell)
            add r1, r1, 1
            st r1, r0(cell)
            out r1
            halt
        """
    )
    ex = Executor(program)
    assert ex.run().output == [2]
    assert ex.run().output == [2]  # fresh memory image every run
