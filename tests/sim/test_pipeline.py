"""Timing-model tests: stall accounting and both early-gen paths."""

import pytest

from repro.isa import (
    DataItem,
    Function,
    Imm,
    Instruction,
    Label,
    LoadSpec,
    Opcode,
    Program,
    Reg,
    Sym,
)
from repro.sim.executor import execute
from repro.sim.machine import (
    BASELINE,
    EarlyGenConfig,
    MachineConfig,
    SelectionMode,
)
from repro.sim.pipeline import TimingSimulator, simulate


def I(op, dest=None, srcs=(), target=None, lspec=LoadSpec.N):  # noqa: E743
    return Instruction(op, dest, srcs, target, lspec)


def build_and_trace(items, data=()):
    p = Program()
    f = Function("main")
    for item in items:
        f.append(item)
    p.add_function(f)
    for d in data:
        p.add_data(d)
    p.layout()
    return execute(p).trace


def strided_loop(spec, iters=200):
    """sum += arr[i] with the load marked *spec*."""
    return build_and_trace(
        [
            I(Opcode.LEA, Reg(4), [Sym("arr")]),
            I(Opcode.MOV, Reg(5), [Imm(0)]),
            I(Opcode.MOV, Reg(6), [Imm(0)]),
            Label("loop"),
            I(Opcode.LD, Reg(7), [Reg(4), Imm(0)], lspec=spec),
            I(Opcode.ADD, Reg(5), [Reg(5), Reg(7)]),
            I(Opcode.ADD, Reg(4), [Reg(4), Imm(4)]),
            I(Opcode.ADD, Reg(6), [Reg(6), Imm(1)]),
            I(Opcode.BLT, None, [Reg(6), Imm(iters)], "loop"),
            I(Opcode.HALT),
        ],
        data=[DataItem("arr", 4 * iters, init=list(range(iters)))],
    )


def pointer_block_loop(spec, iters=200):
    """Loads off a base register that is stable within the iteration."""
    return build_and_trace(
        [
            I(Opcode.LEA, Reg(4), [Sym("arr")]),
            I(Opcode.MOV, Reg(5), [Imm(0)]),
            I(Opcode.MOV, Reg(6), [Imm(0)]),
            Label("loop"),
            I(Opcode.LD, Reg(7), [Reg(4), Imm(0)], lspec=spec),
            I(Opcode.ADD, Reg(5), [Reg(5), Reg(7)]),
            I(Opcode.LD, Reg(8), [Reg(4), Imm(4)], lspec=spec),
            I(Opcode.ADD, Reg(5), [Reg(5), Reg(8)]),
            I(Opcode.ADD, Reg(6), [Reg(6), Imm(1)]),
            I(Opcode.BLT, None, [Reg(6), Imm(iters)], "loop"),
            I(Opcode.HALT),
        ],
        data=[DataItem("arr", 64, init=[3, 4])],
    )


def cycles(trace, earlygen=BASELINE, **machine_kwargs):
    config = MachineConfig(**machine_kwargs).with_earlygen(earlygen)
    return TimingSimulator(trace, config).run()


class TestBaseline:
    def test_load_use_stall_costs_cycles(self):
        dependent = build_and_trace(
            [
                I(Opcode.MOV, Reg(1), [Imm(0x2000)]),
                I(Opcode.LD, Reg(2), [Reg(1), Imm(0)]),
                I(Opcode.ADD, Reg(3), [Reg(2), Imm(1)]),  # immediate use
                I(Opcode.HALT),
            ]
        )
        independent = build_and_trace(
            [
                I(Opcode.MOV, Reg(1), [Imm(0x2000)]),
                I(Opcode.LD, Reg(2), [Reg(1), Imm(0)]),
                I(Opcode.ADD, Reg(3), [Reg(1), Imm(1)]),  # no dependence
                I(Opcode.HALT),
            ]
        )
        assert cycles(dependent).cycles > cycles(independent).cycles

    def test_issue_width_bound(self):
        # 24 independent ALU ops cannot finish faster than the 4-ALU bound.
        items = [I(Opcode.MOV, Reg(1), [Imm(0)])]
        for i in range(24):
            items.append(I(Opcode.ADD, Reg(2 + i % 8), [Reg(1), Imm(i)]))
        items.append(I(Opcode.HALT))
        stats = cycles(build_and_trace(items))
        assert stats.cycles >= 24 // 4

    def test_dcache_miss_penalty(self):
        from repro.sim.machine import CacheConfig

        # Alternating accesses to two blocks: a one-block cache conflicts
        # on every access, the default cache only takes compulsory misses.
        items = [
            I(Opcode.LEA, Reg(4), [Sym("arr")]),
            I(Opcode.MOV, Reg(6), [Imm(0)]),
            Label("loop"),
            I(Opcode.LD, Reg(7), [Reg(4), Imm(0)]),
            I(Opcode.ADD, Reg(5), [Reg(5), Reg(7)]),
            I(Opcode.LD, Reg(8), [Reg(4), Imm(64)]),
            I(Opcode.ADD, Reg(5), [Reg(5), Reg(8)]),
            I(Opcode.ADD, Reg(6), [Reg(6), Imm(1)]),
            I(Opcode.BLT, None, [Reg(6), Imm(50)], "loop"),
            I(Opcode.HALT),
        ]
        trace = build_and_trace(items, data=[DataItem("arr", 128)])
        fast = cycles(trace)
        slow = TimingSimulator(
            trace,
            MachineConfig(
                dcache=CacheConfig(size=64, block_size=64, miss_penalty=40)
            ),
        ).run()
        assert slow.cycles > fast.cycles
        assert slow.dcache_misses > fast.dcache_misses

    def test_mispredict_penalty_costs(self):
        trace = strided_loop(LoadSpec.N, iters=100)
        base = cycles(trace)
        cheap = cycles(trace, mispredict_penalty=0, jump_bubble=0)
        assert base.cycles >= cheap.cycles

    def test_stats_instruction_count(self):
        trace = strided_loop(LoadSpec.N, iters=10)
        stats = cycles(trace)
        assert stats.instructions == len(trace)
        assert stats.loads == 10


class TestPredictionPath:
    def test_ld_p_speeds_up_strided_loop(self):
        trace = strided_loop(LoadSpec.P)
        base = cycles(trace)
        pred = cycles(trace, EarlyGenConfig(256, 0, SelectionMode.COMPILER))
        assert pred.cycles < base.cycles
        assert pred.pred_success > 150  # warmup losses only

    def test_ld_n_is_never_speculated(self):
        trace = strided_loop(LoadSpec.N)
        stats = cycles(trace, EarlyGenConfig(256, 1, SelectionMode.COMPILER))
        assert stats.pred_loads == 0
        assert stats.calc_loads == 0
        assert stats.scheme_counts["n"] == stats.loads

    def test_hardware_mode_ignores_specifiers(self):
        trace = strided_loop(LoadSpec.N)
        stats = cycles(trace, EarlyGenConfig(256, 0, SelectionMode.HARDWARE))
        assert stats.pred_loads == stats.loads

    def test_small_table_conflicts_hurt(self):
        """Many distinct strided loads: a tiny table thrashes."""
        items = [
            I(Opcode.LEA, Reg(4), [Sym("arr")]),
            I(Opcode.MOV, Reg(6), [Imm(0)]),
            Label("loop"),
        ]
        # 8 loads at distinct PCs, all strided.
        for k in range(8):
            items.append(
                I(Opcode.LD, Reg(8 + k), [Reg(4), Imm(4 * k)], lspec=LoadSpec.P)
            )
        items += [
            I(Opcode.ADD, Reg(4), [Reg(4), Imm(32)]),
            I(Opcode.ADD, Reg(6), [Reg(6), Imm(1)]),
            I(Opcode.BLT, None, [Reg(6), Imm(100)], "loop"),
            I(Opcode.HALT),
        ]
        trace = build_and_trace(
            items, data=[DataItem("arr", 32 * 101)]
        )
        big = cycles(trace, EarlyGenConfig(256, 0, SelectionMode.COMPILER))
        # a 2-entry table cannot hold 8 loads mapping over the same PCs
        tiny = cycles(trace, EarlyGenConfig(2, 0, SelectionMode.COMPILER))
        assert big.pred_success > tiny.pred_success
        assert big.cycles <= tiny.cycles

    def test_spec_override_changes_routing(self):
        trace = strided_loop(LoadSpec.N)
        uid = next(
            inst.uid for inst in trace.program.flat if inst.is_load
        )
        config = MachineConfig().with_earlygen(
            EarlyGenConfig(256, 0, SelectionMode.COMPILER)
        )
        stats = TimingSimulator(
            trace, config, spec_override={uid: LoadSpec.P}
        ).run()
        assert stats.pred_loads == stats.loads


class TestEarlyCalcPath:
    def test_ld_e_zero_cycle_loads(self):
        trace = pointer_block_loop(LoadSpec.E)
        base = cycles(trace)
        calc = cycles(trace, EarlyGenConfig(0, 1, SelectionMode.COMPILER))
        assert calc.cycles < base.cycles
        assert calc.calc_success > 0

    def test_ld_e_beats_ld_p_on_same_code(self):
        """Zero-cycle forwarding saves more than the 1-cycle table path."""
        calc = cycles(
            pointer_block_loop(LoadSpec.E),
            EarlyGenConfig(0, 1, SelectionMode.COMPILER),
        )
        pred = cycles(
            pointer_block_loop(LoadSpec.P),
            EarlyGenConfig(256, 0, SelectionMode.COMPILER),
        )
        assert calc.cycles <= pred.cycles

    def test_binding_switch_hazard(self):
        """Alternating base registers thrash the single R_addr."""
        items = [
            I(Opcode.LEA, Reg(4), [Sym("a")]),
            I(Opcode.LEA, Reg(5), [Sym("b")]),
            I(Opcode.MOV, Reg(6), [Imm(0)]),
            Label("loop"),
            I(Opcode.LD, Reg(7), [Reg(4), Imm(0)], lspec=LoadSpec.E),
            I(Opcode.LD, Reg(8), [Reg(5), Imm(0)], lspec=LoadSpec.E),
            I(Opcode.ADD, Reg(6), [Reg(6), Imm(1)]),
            I(Opcode.BLT, None, [Reg(6), Imm(100)], "loop"),
            I(Opcode.HALT),
        ]
        trace = build_and_trace(
            items, data=[DataItem("a", 4), DataItem("b", 4)]
        )
        stats = cycles(trace, EarlyGenConfig(0, 1, SelectionMode.COMPILER))
        # every probe misses: the binding always belongs to the other load
        assert stats.calc_success == 0

    def test_bric_two_registers_fix_the_thrash(self):
        items = [
            I(Opcode.LEA, Reg(4), [Sym("a")]),
            I(Opcode.LEA, Reg(5), [Sym("b")]),
            I(Opcode.MOV, Reg(6), [Imm(0)]),
            Label("loop"),
            I(Opcode.LD, Reg(7), [Reg(4), Imm(0)]),
            I(Opcode.LD, Reg(8), [Reg(5), Imm(0)]),
            I(Opcode.ADD, Reg(6), [Reg(6), Imm(1)]),
            I(Opcode.BLT, None, [Reg(6), Imm(100)], "loop"),
            I(Opcode.HALT),
        ]
        trace = build_and_trace(
            items, data=[DataItem("a", 4), DataItem("b", 4)]
        )
        one = cycles(trace, EarlyGenConfig(0, 1, SelectionMode.HARDWARE))
        two = cycles(trace, EarlyGenConfig(0, 2, SelectionMode.HARDWARE))
        assert two.calc_success > one.calc_success
        assert two.cycles <= one.cycles

    def test_raddr_interlock_blocks_chained_base(self):
        """A base register produced by the immediately preceding load is
        not ready at ID1: the chain load cannot forward."""
        p = Program()
        f = Function("main")
        f.append(I(Opcode.LEA, Reg(4), [Sym("cell")]))
        f.append(I(Opcode.MOV, Reg(6), [Imm(0)]))
        f.append(Label("loop"))
        # self-loop pointer: cell points at itself
        f.append(I(Opcode.LD, Reg(4), [Reg(4), Imm(0)], lspec=LoadSpec.E))
        f.append(I(Opcode.LD, Reg(4), [Reg(4), Imm(0)], lspec=LoadSpec.E))
        f.append(I(Opcode.ADD, Reg(6), [Reg(6), Imm(1)]))
        f.append(I(Opcode.BLT, None, [Reg(6), Imm(50)], "loop"))
        f.append(I(Opcode.HALT))
        p.add_function(f)
        from repro.isa.program import DATA_BASE

        p.add_data(DataItem("cell", 4, init=[DATA_BASE]))
        p.layout()
        trace = execute(p).trace
        stats = cycles(trace, EarlyGenConfig(0, 1, SelectionMode.COMPILER))
        # base always comes from a 2-cycle-old load: never ready at ID1
        assert stats.calc_success < stats.calc_loads * 0.1


class TestDualPath:
    def test_eickemeyer_selection_routes_both_ways(self):
        trace = strided_loop(LoadSpec.N)
        stats = cycles(trace, EarlyGenConfig(256, 1, SelectionMode.HARDWARE))
        assert stats.pred_loads + stats.calc_loads == stats.loads

    def test_compiler_dual_uses_both_paths(self):
        items = [
            I(Opcode.LEA, Reg(4), [Sym("arr")]),
            I(Opcode.LEA, Reg(9), [Sym("box")]),
            I(Opcode.MOV, Reg(5), [Imm(0)]),
            I(Opcode.MOV, Reg(6), [Imm(0)]),
            Label("loop"),
            I(Opcode.LD, Reg(7), [Reg(4), Imm(0)], lspec=LoadSpec.P),
            I(Opcode.LD, Reg(8), [Reg(9), Imm(0)], lspec=LoadSpec.E),
            I(Opcode.ADD, Reg(5), [Reg(5), Reg(7)]),
            I(Opcode.ADD, Reg(5), [Reg(5), Reg(8)]),
            I(Opcode.ADD, Reg(4), [Reg(4), Imm(4)]),
            I(Opcode.ADD, Reg(6), [Reg(6), Imm(1)]),
            I(Opcode.BLT, None, [Reg(6), Imm(100)], "loop"),
            I(Opcode.HALT),
        ]
        trace = build_and_trace(
            items,
            data=[DataItem("arr", 404), DataItem("box", 4, init=[5])],
        )
        stats = cycles(trace, EarlyGenConfig(256, 1, SelectionMode.COMPILER))
        assert stats.pred_success > 0
        assert stats.calc_success > 0
        assert stats.cycles < cycles(trace).cycles


class TestMemInterlock:
    def test_store_to_same_word_blocks_forwarding(self):
        """A store writing the loaded word right before a speculative
        load must suppress forwarding (Mem_Interlock)."""
        items = [
            I(Opcode.LEA, Reg(4), [Sym("box")]),
            I(Opcode.MOV, Reg(5), [Imm(1)]),
            I(Opcode.MOV, Reg(6), [Imm(0)]),
            Label("loop"),
            I(Opcode.ADD, Reg(5), [Reg(5), Imm(1)]),
            I(Opcode.ST, None, [Reg(5), Reg(4), Imm(0)]),
            I(Opcode.LD, Reg(7), [Reg(4), Imm(0)], lspec=LoadSpec.E),
            I(Opcode.ADD, Reg(6), [Reg(6), Imm(1)]),
            I(Opcode.BLT, None, [Reg(6), Imm(100)], "loop"),
            I(Opcode.HALT),
        ]
        trace = build_and_trace(items, data=[DataItem("box", 4)])
        stats = cycles(trace, EarlyGenConfig(0, 1, SelectionMode.COMPILER))
        assert stats.spec_mem_interlock > 50

    def test_store_to_other_word_does_not_block(self):
        items = [
            I(Opcode.LEA, Reg(4), [Sym("box")]),
            I(Opcode.MOV, Reg(5), [Imm(1)]),
            I(Opcode.MOV, Reg(6), [Imm(0)]),
            Label("loop"),
            I(Opcode.ST, None, [Reg(5), Reg(4), Imm(32)]),
            I(Opcode.LD, Reg(7), [Reg(4), Imm(0)], lspec=LoadSpec.E),
            I(Opcode.ADD, Reg(6), [Reg(6), Imm(1)]),
            I(Opcode.BLT, None, [Reg(6), Imm(100)], "loop"),
            I(Opcode.HALT),
        ]
        trace = build_and_trace(items, data=[DataItem("box", 64)])
        stats = cycles(trace, EarlyGenConfig(0, 1, SelectionMode.COMPILER))
        assert stats.spec_mem_interlock == 0
        assert stats.calc_success > 50


class TestSimulateHelpers:
    def test_simulate_wrapper(self):
        trace = strided_loop(LoadSpec.P, iters=20)
        stats = simulate(trace, earlygen=EarlyGenConfig(64, 0))
        assert stats.cycles > 0

    def test_speedup_helper(self):
        from repro.sim.pipeline import speedup

        trace = strided_loop(LoadSpec.P)
        ratio, stats, base = speedup(trace, EarlyGenConfig(256, 1))
        assert ratio == pytest.approx(base.cycles / stats.cycles)
        assert ratio > 1.0
