"""Figure 3 state-machine tests: exhaustive transition coverage plus
behavioural checks for the bounded table and the unbounded profiler."""

import pytest

from repro.sim.stride_table import (
    FUNCTIONING,
    LEARNING,
    AddressPredictionTable,
    TableEntry,
    UnboundedPredictor,
)


class TestTableEntry:
    def test_allocation_is_replace_arc(self):
        e = TableEntry(tag=1, ca=100)
        assert (e.pa, e.st, e.stc, e.state) == (100, 0, 1, FUNCTIONING)

    def test_correct_arc_constant_address(self):
        e = TableEntry(1, 100)
        assert e.predict() == 100
        e.update(100)  # Correct: PA = CA + ST = 100
        assert (e.pa, e.st, e.stc, e.state) == (100, 0, 1, FUNCTIONING)

    def test_new_stride_arc(self):
        e = TableEntry(1, 100)
        e.update(104)  # PA(100) != CA(104)
        assert e.state == LEARNING
        assert e.st == 4
        assert e.stc == 0
        assert e.predict() is None  # no prediction while learning

    def test_verified_stride_arc(self):
        e = TableEntry(1, 100)
        e.update(104)  # -> learning, ST=4
        e.update(108)  # CA-PA == ST -> Verified_Stride
        assert e.state == FUNCTIONING
        assert e.stc == 1
        assert e.pa == 112  # CA + ST
        assert e.predict() == 112

    def test_learning_mismatch_stays_learning(self):
        e = TableEntry(1, 100)
        e.update(104)  # learning, ST=4
        e.update(120)  # CA-PA = 16 != 4
        assert e.state == LEARNING
        assert e.st == 16
        e.update(136)  # 136-120 == 16 -> verified
        assert e.state == FUNCTIONING
        assert e.pa == 152

    def test_strided_stream_predicts_after_training(self):
        e = TableEntry(1, 0)
        correct = 0
        addr = 0
        for _ in range(20):
            addr += 8
            if e.predict() == addr:
                correct += 1
            e.update(addr)
        # one New_Stride miss + one learning step, then all correct
        assert correct == 18

    def test_functioning_correct_advances_by_stride(self):
        e = TableEntry(1, 0)
        e.update(4)
        e.update(8)  # verified, ST=4, PA=12
        e.update(12)  # correct -> PA=16
        assert e.pa == 16

    def test_two_consecutive_instances_required(self):
        """The paper: "the stride confidence will not be built until the
        same stride is seen in two consecutive instances"."""
        e = TableEntry(1, 0)
        e.update(4)  # stride 4 seen once -> learning
        assert e.stc == 0
        e.update(8)  # stride 4 seen twice -> confident
        assert e.stc == 1


class TestAddressPredictionTable:
    def test_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            AddressPredictionTable(100)
        with pytest.raises(ValueError):
            AddressPredictionTable(0)

    def test_cold_probe_misses(self):
        t = AddressPredictionTable(64)
        assert t.probe(0x1000) is None

    def test_probe_update_cycle(self):
        t = AddressPredictionTable(64)
        pc = 0x1000
        t.update(pc, 100, None)
        assert t.probe(pc) == 100  # constant-address prediction
        t.update(pc, 100, 100)
        assert t.correct == 1

    def test_conflict_replaces_entry(self):
        t = AddressPredictionTable(64)
        pc_a = 0x1000
        pc_b = 0x1000 + 64 * 4  # same index, different tag
        t.update(pc_a, 100, None)
        assert t.probe(pc_a) == 100
        t.update(pc_b, 555, None)  # Replace arc
        assert t.probe(pc_b) == 555
        assert t.probe(pc_a) is None  # evicted

    def test_distinct_indices_do_not_conflict(self):
        t = AddressPredictionTable(64)
        t.update(0x1000, 100, None)
        t.update(0x1004, 200, None)
        assert t.probe(0x1000) == 100
        assert t.probe(0x1004) == 200

    def test_strided_load_through_table(self):
        t = AddressPredictionTable(256)
        pc = 0x2000
        hits = 0
        for i in range(50):
            addr = 0x8000 + i * 4
            if t.probe(pc) == addr:
                hits += 1
            t.update(pc, addr, None)
        assert hits >= 47

    def test_reset(self):
        t = AddressPredictionTable(64)
        t.update(0x1000, 100, None)
        t.reset()
        assert t.probe(0x1000) is None
        assert t.probes == 1  # counter restarted (this probe)


class TestUnboundedPredictor:
    def test_per_load_isolation(self):
        u = UnboundedPredictor()
        # load A strided, load B address-scrambled
        for i in range(40):
            u.observe(1, 0x1000 + i * 4)
            u.observe(2, (i * i * 2654435761) & 0xFFFC)
        assert u.rate(1) > 0.9
        assert u.rate(2) < 0.2

    def test_rate_of_unknown_load(self):
        assert UnboundedPredictor().rate(99) == 0.0

    def test_constant_address(self):
        u = UnboundedPredictor()
        for _ in range(10):
            u.observe(5, 0x4000)
        assert u.rate(5) == 0.9  # all but the cold first access

    def test_overall_rate(self):
        u = UnboundedPredictor()
        for i in range(10):
            u.observe(1, i * 8)
        assert 0 < u.overall_rate() < 1
        assert u.accesses == 10

    def test_observe_returns_hit(self):
        u = UnboundedPredictor()
        assert not u.observe(1, 100)  # cold
        assert u.observe(1, 100)  # constant predicted
