"""Shared fixtures for the sim test tree."""

import pytest

from repro.sim import precompute


@pytest.fixture(autouse=True)
def stream_path_on_tiny_traces(monkeypatch):
    """Keep the precomputed-stream path engaged for unit-sized traces.

    Real workloads only amortize stream construction above
    ``_PRECOMPUTE_MIN_N`` dynamic instructions; the hand-built traces in
    these tests are far below it, and the point of most of them is to
    pin the stream path itself.  Tests covering the threshold behaviour
    set their own value explicitly.
    """
    monkeypatch.setattr(precompute, "_PRECOMPUTE_MIN_N", 0)
