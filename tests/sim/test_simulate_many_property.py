"""Property test: ``simulate_many`` equals independent simulator runs.

For random programs, machine shapes, table sizes, selection modes
(including hardware dual-path run-time selection, which is inline-only)
and random ``spec_override`` maps, a batched ``simulate_many`` sweep
must produce :class:`~repro.sim.stats.SimStats` bit-identical to
running each config through its own ``TimingSimulator`` — the batched
path shares one precompute across the sweep, so this pins that sharing
(and the divergence patching behind it) never leaks between configs.

Runs under the deterministic ``repro`` hypothesis profile (see
``tests/conftest.py``).
"""

from __future__ import annotations

import random
import sys
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.isa import parse_asm
from repro.isa.opcodes import LoadSpec
from repro.sim.executor import execute
from repro.sim.machine import EarlyGenConfig, SelectionMode
from repro.sim.pipeline import _K_LOAD, TimingSimulator, _decode_program
from repro.sim.precompute import simulate_many

from golden_cases import stats_to_record
from test_pipeline_parity import _random_asm, _random_machine

#: Guarantees hardware dual-path (run-time selection) coverage in every
#: sweep, on top of whatever _random_machine draws.
_HW_DUAL = EarlyGenConfig(16, 2, SelectionMode.HARDWARE)


def _random_override(rng: random.Random, program) -> dict:
    """A random reclassification map over the program's static loads."""
    dec, _ = _decode_program(program)
    load_uids = [uid for uid, entry in enumerate(dec)
                 if entry is not None and entry[0] == _K_LOAD]
    chosen = rng.sample(load_uids, k=min(len(load_uids),
                                         rng.randint(1, 4)))
    specs = (LoadSpec.N, LoadSpec.P, LoadSpec.E)
    return {uid: rng.choice(specs) for uid in chosen}


@settings(max_examples=15)
@given(st.integers(min_value=0, max_value=2**30))
def test_simulate_many_equals_independent_runs(seed):
    rng = random.Random(seed)
    trace = execute(parse_asm(_random_asm(rng))).trace

    machines = [_random_machine(rng) for _ in range(4)]
    machines.append(machines[0].with_earlygen(_HW_DUAL))
    overrides = [
        _random_override(rng, trace.program) if rng.random() < 0.4 else None
        for _ in machines
    ]

    expected = [
        stats_to_record(
            TimingSimulator(trace, machine, override).run()
        )
        for machine, override in zip(machines, overrides)
    ]
    batched = simulate_many(trace, machines, overrides=overrides)
    assert [stats_to_record(s) for s in batched] == expected
