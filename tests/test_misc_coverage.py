"""Small-surface coverage: trace iterators, reporting options, registry."""

import pytest

from repro.harness.reporting import format_table
from repro.isa import parse_asm
from repro.sim.executor import execute
from repro.workloads import get_workload


class TestTraceIterators:
    @pytest.fixture(scope="class")
    def result(self):
        return execute(
            parse_asm(
                """
                .data arr 16 = 1 2 3 4
                main:
                    lea r4, arr
                    ld_n r5, r4(0)
                    st r5, r4(8)
                    fld_n f1, r4(0)
                    halt
                """
            )
        )

    def test_mem_accesses_cover_loads_and_stores(self, result):
        accesses = list(result.trace.mem_accesses())
        assert len(accesses) == 3  # ld + st + fld

    def test_load_addresses_exclude_stores(self, result):
        loads = list(result.trace.load_addresses())
        assert len(loads) == 2
        assert result.trace.dynamic_load_count() == 2

    def test_len_matches_steps(self, result):
        assert len(result.trace) == result.steps


class TestReporting:
    ROWS = [
        {"name": "a", "value": 1.23456, "count": 7},
        {"name": "bb", "value": 2.0, "count": 10},
    ]

    def test_precision(self):
        text = format_table(self.ROWS, precision=3)
        assert "1.235" in text
        assert "2.000" in text

    def test_column_selection(self):
        text = format_table(self.ROWS, columns=["name", "count"])
        assert "value" not in text
        assert "1.23" not in text

    def test_header_mapping(self):
        text = format_table(self.ROWS, headers={"name": "Benchmark"})
        assert "Benchmark" in text

    def test_alignment(self):
        lines = format_table(self.ROWS).splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows padded to equal width


class TestWorkloadRegistry:
    def test_source_scale_substitution(self):
        workload = get_workload("023.eqntott")
        assert "__SCALE__" in workload.source_template
        assert "__SCALE__" not in workload.source(100)
        assert "100" in workload.source(100)

    def test_default_scale_used_when_none(self):
        workload = get_workload("023.eqntott")
        assert workload.source() == workload.source(workload.default_scale)

    def test_expected_output_respects_scale(self):
        workload = get_workload("134.perl")
        assert workload.expected_output(3) != workload.expected_output(7)

    def test_descriptions_nonempty(self):
        from repro.workloads import workload_names

        for name in workload_names():
            assert get_workload(name).description


class TestLoopUtilities:
    def test_loop_blocks_of_function(self):
        from repro.compiler.cfg import CFG
        from repro.compiler.loops import loop_blocks_of_function

        program = parse_asm(
            """
            main:
                mov r1, 0
            loop:
                add r1, r1, 1
                blt r1, 5, loop
                out r1
                halt
            """
        )
        func = program.functions["main"]
        cfg = CFG(func)
        cyclic = loop_blocks_of_function(cfg)
        assert cyclic  # the loop block is found
        assert len(cyclic) < len(cfg.blocks)  # entry/exit stay acyclic
