"""Unit tests for run manifests (repro.obs.manifest)."""

import enum
import json
from dataclasses import dataclass
from pathlib import Path

from repro.obs import (
    MANIFEST_NAME,
    build_manifest,
    jsonable,
    load_manifest,
    validate_manifest,
    write_manifest,
)
from repro.sim.machine import MachineConfig


class Color(enum.Enum):
    RED = "red"


@dataclass
class Point:
    x: int
    path: Path


def test_jsonable_handles_dataclasses_enums_paths():
    value = jsonable({
        "point": Point(1, Path("/tmp/x")),
        "color": Color.RED,
        "seq": (1, 2),
    })
    assert value == {
        "point": {"x": 1, "path": "/tmp/x"},
        "color": "red",
        "seq": [1, 2],
    }
    json.dumps(value)  # fully JSON-native


def build(workloads=None, **kwargs):
    return build_manifest(
        command="repro.harness.main",
        argv=["--scale", "0.02"],
        scale=0.02,
        machine=MachineConfig(),
        workloads=workloads if workloads is not None else [
            {"name": "022.li", "status": "ok"},
            {"name": "130.li", "status": "timeout"},
        ],
        **kwargs,
    )


def test_build_manifest_is_valid_and_lists_degraded():
    manifest = build()
    assert validate_manifest(manifest) == []
    assert manifest["degraded"] == ["130.li"]
    json.dumps(manifest)  # serializable including the machine config


def test_write_and_load_round_trip_fills_trace_files(tmp_path):
    (tmp_path / "trace-1.jsonl").write_text("", encoding="utf-8")
    (tmp_path / "trace-2.jsonl").write_text("", encoding="utf-8")
    path = write_manifest(tmp_path, build())
    assert path == tmp_path / MANIFEST_NAME
    loaded = load_manifest(tmp_path)
    assert loaded["trace_files"] == ["trace-1.jsonl", "trace-2.jsonl"]
    assert validate_manifest(loaded) == []


def test_validate_manifest_reports_problems():
    assert validate_manifest("nope") == ["manifest is not a JSON object"]

    manifest = build()
    del manifest["git"]
    manifest["schema"] = 99
    manifest["workloads"] = [{"status": "ok"}]  # lacks a name
    problems = validate_manifest(manifest)
    assert any("git" in p for p in problems)
    assert any("schema" in p for p in problems)
    assert any("lacks a name" in p for p in problems)


def test_extra_keys_are_merged():
    manifest = build(extra={"suite": "spec", "jobs": 2})
    assert manifest["suite"] == "spec"
    assert manifest["jobs"] == 2
