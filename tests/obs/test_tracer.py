"""Unit tests for the tracing core (repro.obs.tracer)."""

import json

import pytest

from repro import obs
from repro.obs import NULL_TRACER, TRACE_SCHEMA, Tracer


def read_records(out_dir):
    records = []
    for path in sorted(out_dir.glob("*.jsonl")):
        for line in path.read_text(encoding="utf-8").splitlines():
            records.append(json.loads(line))
    return records


def spans(records):
    return [r for r in records if r["kind"] == "span"]


def test_span_records_duration_and_counters(tmp_path):
    tracer = Tracer(tmp_path)
    with tracer.span("work", color="red") as span:
        span.counter("items")
        span.counter("items", 2)
        span.set_counters(loads=7)
    tracer.close()

    records = read_records(tmp_path)
    assert records[0]["kind"] == "meta"
    (span_rec,) = spans(records)
    assert span_rec["name"] == "work"
    assert span_rec["schema"] == TRACE_SCHEMA
    assert span_rec["dur_s"] >= 0
    assert span_rec["tags"]["color"] == "red"
    assert span_rec["counters"] == {"items": 3, "loads": 7}


def test_nested_spans_link_parent_ids_and_inherit_tags(tmp_path):
    tracer = Tracer(tmp_path, tags={"run": "r1"})
    with tracer.span("outer", workload="li") as outer:
        with tracer.span("inner"):
            pass
        assert outer is not None
    tracer.close()

    inner, outer = spans(read_records(tmp_path))
    # Children close (and are written) before their parent.
    assert inner["name"] == "inner"
    assert outer["name"] == "outer"
    assert inner["parent_id"] == outer["span_id"]
    assert outer["parent_id"] is None
    # Base tags + enclosing-span tags flow onto the inner record.
    assert inner["tags"] == {"run": "r1", "workload": "li"}


def test_exception_inside_span_is_tagged_and_propagates(tmp_path):
    tracer = Tracer(tmp_path)
    with pytest.raises(ValueError):
        with tracer.span("fails"):
            raise ValueError("boom")
    tracer.close()

    (rec,) = spans(read_records(tmp_path))
    assert rec["tags"]["error"] == "ValueError"


def test_events_and_tagged_context(tmp_path):
    tracer = Tracer(tmp_path)
    with tracer.tagged(workload="espresso"):
        tracer.event("profile.classes", counters={"static_n": 3})
    tracer.close()

    records = read_records(tmp_path)
    events = [r for r in records if r["kind"] == "event"]
    (event,) = events
    assert event["name"] == "profile.classes"
    assert event["tags"]["workload"] == "espresso"
    assert event["counters"] == {"static_n": 3}
    # The "ctx" pseudo-span scopes tags but is never recorded.
    assert not spans(records)


def test_null_tracer_is_inert_and_ambient_by_default():
    tracer = obs.current()
    assert tracer is NULL_TRACER
    assert not tracer.enabled
    with tracer.span("anything", tag=1) as span:
        span.counter("x")
        span.set_counters(y=2)
        span.set_tag(z=3)
    tracer.event("e", counters={"a": 1})
    tracer.add_tags(worker="w0")
    tracer.close()  # all no-ops, nothing raised


def test_configure_installs_and_disable_restores(tmp_path):
    try:
        tracer = obs.configure(tmp_path, command="test")
        assert obs.current() is tracer
        assert tracer.enabled
        with tracer.span("s"):
            pass
    finally:
        obs.disable()
    assert obs.current() is NULL_TRACER
    records = read_records(tmp_path)
    assert records[0]["tags"] == {"command": "test"}
    assert spans(records)


def test_per_pid_file_naming(tmp_path):
    import os

    tracer = Tracer(tmp_path)
    with tracer.span("s"):
        pass
    tracer.close()
    assert (tmp_path / f"trace-{os.getpid()}.jsonl").exists()
