"""JobScheduler: dedup, caching, priorities, backpressure, timeouts."""

import pytest

from repro.harness.runner import RunnerConfig
from repro.service.jobs import JobSpec, JobValidationError
from repro.service.scheduler import JobScheduler, QueueFull
from repro.service.store import ResultStore

_LOOP = """
int main() {
    int i;
    int j;
    int acc;
    acc = 0;
    for (i = 0; i < __N__; i = i + 1) {
        for (j = 0; j < __N__; j = j + 1) {
            acc = acc + 1;
        }
    }
    print_int(acc);
    return 0;
}
"""


def _src(n, salt=0):
    """Mini-C source whose runtime scales as n^2; salt varies the key."""
    text = _LOOP.replace("__N__", str(n))
    if salt:
        text += f"// salt {salt}\n"
    return text


FAST = JobSpec(source=_src(10))
SLOW = JobSpec(source=_src(300))  # ~0.4 s of emulation
VERY_SLOW = JobSpec(source=_src(900))  # ~3.5 s of emulation
BROKEN = JobSpec(source="int main() { return 0 }")  # missing semicolon


def _scheduler(tmp_path, **kwargs):
    store = ResultStore(tmp_path / "store")
    kwargs.setdefault("jobs", 1)
    return JobScheduler(store, **kwargs).start()


def test_submit_requires_started_scheduler(tmp_path):
    sched = JobScheduler(ResultStore(tmp_path / "store"))
    with pytest.raises(RuntimeError, match="not started"):
        sched.submit(FAST)


def test_submit_validates(tmp_path):
    sched = _scheduler(tmp_path)
    try:
        with pytest.raises(JobValidationError):
            sched.submit(JobSpec(workload="nope"))
    finally:
        sched.stop()


def test_job_completes(tmp_path):
    sched = _scheduler(tmp_path)
    try:
        job = sched.submit(FAST)
        assert job.wait(60)
        assert job.status == "done"
        assert job.cached is False
        assert job.attempts == 1
        assert job.result["output_preview"] == [100]
        stats = sched.stats()
        assert stats["completed"] == 1 and stats["failed"] == 0
    finally:
        sched.stop()


def test_inflight_dedup_and_cache_hit(tmp_path):
    sched = _scheduler(tmp_path)
    try:
        first = sched.submit(SLOW)
        second = sched.submit(SLOW)
        assert second is first  # attached, not re-queued
        assert first.dedup == 1
        assert first.wait(60) and first.status == "done"
        # The result is in the store now: a new submission is a hit.
        third = sched.submit(SLOW)
        assert third is not first
        assert third.cached is True
        assert third.finished and third.result == first.result
        stats = sched.stats()
        assert stats["deduped"] == 1
        assert stats["completed"] == 2  # one computed, one cached
        assert sched.store.hits == 1
    finally:
        sched.stop()


def test_priorities_order_the_queue(tmp_path):
    sched = _scheduler(tmp_path)  # single worker
    try:
        blocker = sched.submit(SLOW)
        low = sched.submit(JobSpec(source=_src(10, salt=1)), priority=0)
        high = sched.submit(JobSpec(source=_src(10, salt=2)), priority=5)
        for job in (blocker, low, high):
            assert job.wait(60) and job.status == "done"
        order = [entry["name"] for entry in sched.served]
        assert order.index(high.spec.label()) < order.index(low.spec.label())
    finally:
        sched.stop()


def test_queue_full_backpressure(tmp_path):
    sched = _scheduler(tmp_path, max_pending=1)
    try:
        running = sched.submit(SLOW)
        with pytest.raises(QueueFull):
            sched.submit(JobSpec(source=_src(10, salt=3)))
        # Attaching to the in-flight job is still allowed at the bound.
        assert sched.submit(SLOW) is running
        assert running.wait(60)
        # And the bound frees up once the job finishes.
        after = sched.submit(JobSpec(source=_src(10, salt=3)))
        assert after.wait(60) and after.status == "done"
    finally:
        sched.stop()


def test_timeout_kills_job_without_retry(tmp_path):
    sched = _scheduler(
        tmp_path, config=RunnerConfig(timeout=0.3, retries=2, backoff=0.01)
    )
    try:
        job = sched.submit(VERY_SLOW)
        assert job.wait(60)
        assert job.status == "timeout"
        assert job.error_type == "Timeout"
        assert job.attempts == 1  # timeouts are never retried
        # The replacement worker is healthy: new jobs still run.
        ok = sched.submit(FAST)
        assert ok.wait(60) and ok.status == "done"
        assert sched.stats()["failed"] == 1
    finally:
        sched.stop()


def test_failing_job_is_retried_then_fails(tmp_path):
    sched = _scheduler(
        tmp_path, config=RunnerConfig(retries=1, backoff=0.01)
    )
    try:
        job = sched.submit(BROKEN)
        assert job.wait(60)
        assert job.status == "error"
        assert job.attempts == 2  # original + one retry
        assert job.error_type and job.error
        # Failures are not cached: resubmitting runs again.
        again = sched.submit(BROKEN)
        assert again is not job and again.cached is False
        assert again.wait(60) and again.status == "error"
    finally:
        sched.stop()


def test_stop_unblocks_waiters(tmp_path):
    sched = _scheduler(tmp_path)
    job = sched.submit(VERY_SLOW)
    queued = sched.submit(JobSpec(source=_src(900, salt=4)))
    sched.stop()
    assert job.finished and queued.finished
    for stranded in (job, queued):
        assert stranded.status == "error"
        assert stranded.error_type == "SchedulerStopped"
