"""HTTP API end to end: in-process server, real sockets, real workers."""

import threading

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.server import ReproService

SRC = """
int main() {
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < 50; i = i + 1) {
        acc = acc + i;
    }
    print_int(acc);
    return 0;
}
"""

SRC_SLOW = SRC.replace("< 50", "< 90000")  # ~0.5 s of emulation


@pytest.fixture
def service(tmp_path):
    svc = ReproService(tmp_path / "store", jobs=2)
    svc.start(port=0, quiet=True)
    thread = threading.Thread(target=svc.serve_forever, daemon=True)
    thread.start()
    try:
        yield svc
    finally:
        svc.shutdown()
        thread.join(10)


@pytest.fixture
def client(service):
    return ServiceClient(service.url)


def test_healthz(client):
    assert client.healthy()
    assert not ServiceClient("http://127.0.0.1:1").healthy()


def test_submit_wait_then_cached(client):
    job = client.submit({"source": SRC}, wait=True)
    assert job["status"] == "done"
    assert job["cached"] is False
    assert job["result"]["output_preview"] == [1225]
    again = client.submit({"source": SRC}, wait=True)
    assert again["status"] == "done"
    assert again["cached"] is True
    assert again["result"] == job["result"]
    stats = client.stats()
    assert stats["store"]["hits"] == 1
    assert stats["scheduler"]["completed"] == 2


def test_submit_no_wait_then_poll(client):
    job = client.submit({"source": SRC_SLOW})
    assert job["status"] in ("queued", "running")
    snapshot = client.job(job["id"])
    assert snapshot["id"] == job["id"]
    done = client.submit({"source": SRC_SLOW}, wait=True)
    assert done["status"] == "done"
    assert done["id"] == job["id"]  # deduped onto the in-flight job
    assert done["dedup"] >= 1
    assert client.stats()["scheduler"]["deduped"] >= 1


def test_batch_mixes_cached_and_fresh(client):
    warm = client.submit({"workload": "adpcm_decode", "scale": 0.05},
                         wait=True)
    assert warm["status"] == "done"
    result = client.batch(
        [
            {"workload": "adpcm_decode", "scale": 0.05},
            {"workload": "adpcm_encode", "scale": 0.05},
        ],
        wait=True,
    )
    assert result["count"] == 2
    by_name = {j["job"]: j for j in result["jobs"]}
    assert by_name["adpcm_decode"]["cached"] is True
    assert by_name["adpcm_encode"]["cached"] is False
    assert all(j["status"] == "done" for j in result["jobs"])


def test_validation_errors_are_400(client):
    with pytest.raises(ServiceError) as exc:
        client.submit({"workload": "not-a-benchmark"}, wait=True)
    assert exc.value.status == 400
    assert "unknown workload" in exc.value.message
    with pytest.raises(ServiceError) as exc:
        client.submit({"source": SRC, "bogus_field": 1})
    assert exc.value.status == 400
    with pytest.raises(ServiceError) as exc:
        client.batch([])
    assert exc.value.status == 400


def test_unknown_job_is_404(client):
    with pytest.raises(ServiceError) as exc:
        client.job("job-999999")
    assert exc.value.status == 404


def test_stats_shape(client):
    stats = client.stats()
    assert set(stats) == {"store", "scheduler"}
    assert stats["scheduler"]["workers"] == 2
    assert stats["store"]["entries"] == 0


def test_oversized_body_is_413(client):
    big = {"source": "x" * (1 << 21)}  # 2 MiB body, 1 MiB cap
    with pytest.raises(ServiceError) as exc:
        client.submit(big)
    assert exc.value.status == 413
    assert "exceeds" in exc.value.message
    # The connection trouble is contained: the server still serves.
    assert client.healthy()
    assert client.submit({"source": SRC}, wait=True)["status"] == "done"
