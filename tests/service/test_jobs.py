"""JobSpec validation and execute_job semantics."""

import pytest

from repro.service.jobs import JobSpec, JobValidationError, execute_job

SRC_TINY = """
int main() {
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < __SCALE__; i = i + 1) {
        acc = acc + i;
    }
    print_int(acc);
    return 0;
}
""".replace("__SCALE__", "10")


def test_workload_and_source_are_exclusive():
    with pytest.raises(JobValidationError, match="exactly one"):
        JobSpec(workload="022.li", source=SRC_TINY).validate()
    with pytest.raises(JobValidationError, match="exactly one"):
        JobSpec().validate()


def test_unknown_workload_rejected():
    with pytest.raises(JobValidationError, match="unknown workload"):
        JobSpec(workload="no-such-benchmark").validate()


def test_empty_source_rejected():
    with pytest.raises(JobValidationError, match="empty"):
        JobSpec(source="   \n").validate()


def test_bad_scalar_fields_rejected():
    with pytest.raises(JobValidationError, match="scale"):
        JobSpec(workload="022.li", scale=0.0).validate()
    with pytest.raises(JobValidationError, match="opt_level"):
        JobSpec(workload="022.li", opt_level=3).validate()
    with pytest.raises(JobValidationError, match="selection"):
        JobSpec(workload="022.li", selection="psychic").validate()
    # EarlyGenConfig constraints surface as validation errors too.
    with pytest.raises(JobValidationError):
        JobSpec(workload="022.li", table_entries=-5).validate()


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(JobValidationError, match="unknown job fields"):
        JobSpec.from_dict({"workload": "022.li", "frobnicate": 1})
    with pytest.raises(JobValidationError):
        JobSpec.from_dict("not a dict")


def test_from_dict_round_trip():
    spec = JobSpec.from_dict({"workload": "022.li", "scale": 0.25})
    assert spec.workload == "022.li"
    assert spec.scale == 0.25
    assert JobSpec.from_dict(spec.to_dict()) == spec


def test_label():
    assert JobSpec(workload="022.li").label() == "022.li"
    label = JobSpec(source=SRC_TINY).label()
    assert label.startswith("source:") and len(label) == len("source:") + 8
    # Label tracks content, not identity.
    assert JobSpec(source=SRC_TINY).label() == label
    assert JobSpec(source=SRC_TINY + " ").label() != label


def test_execute_source_job():
    result = execute_job(JobSpec(source=SRC_TINY))
    assert result["job"].startswith("source:")
    assert result["output_preview"] == [45]  # sum(range(10))
    assert result["output_verified"] is False
    assert result["cycles"] > 0
    assert result["baseline_cycles"] >= result["cycles"]
    assert result["speedup"] >= 1.0


def test_execute_baseline_config():
    result = execute_job(
        JobSpec(source=SRC_TINY, table_entries=0, cached_regs=0)
    )
    assert result["config"] == "baseline"
    assert result["speedup"] == 1.0


def test_execute_workload_job_verifies_output():
    result = execute_job(JobSpec(workload="adpcm_decode", scale=0.05))
    assert result["job"] == "adpcm_decode"
    assert result["output_verified"] is True
    assert result["config"] == "t256_r1_compiler"


def test_execute_is_deterministic():
    spec = JobSpec(source=SRC_TINY, table_entries=16)
    assert execute_job(spec) == execute_job(spec)


def test_execute_generated_workload_job():
    # 'gen:' names materialize during validation and verify like any
    # registered workload — zero special-casing in the executor.
    result = execute_job(JobSpec(workload="gen:mixed:1", scale=0.25))
    assert result["job"] == "gen:mixed:1"
    assert result["output_verified"] is True
    assert result["speedup"] >= 1.0


def test_generated_workload_bad_name_rejected():
    with pytest.raises(JobValidationError, match="unknown workload"):
        JobSpec(workload="gen:n1p1e1:0").validate()
    with pytest.raises(JobValidationError, match="unknown workload"):
        JobSpec(workload="gen:mixed:minus").validate()
