"""ServiceWorker against a real coordinator: HTTP lease loop end to end.

The coordinator runs with ``jobs=0`` (no local pool), so every result
seen here provably travelled the register → lease → heartbeat →
complete path.  Faults that must not kill the test process (``crash``
is ``os._exit``) are covered by the subprocess chaos tests in
tests/harness/test_distributed.py; the in-thread faults here are
``corrupt`` and ``stale``.
"""

import threading
import time

import pytest

from repro.harness.faults import ServiceFaultInjector
from repro.service.client import ServiceClient
from repro.service.server import ReproService
from repro.service.worker import ServiceWorker

SRC = """
int main() {
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < 60; i = i + 1) {
        acc = acc + i;
    }
    print_int(acc);
    return 0;
}
"""


@pytest.fixture
def coordinator(tmp_path):
    svc = ReproService(tmp_path / "store", jobs=0, retries=2,
                       lease_ttl=1.0)
    svc.start(port=0, quiet=True)
    thread = threading.Thread(target=svc.serve_forever, daemon=True)
    thread.start()
    try:
        yield svc
    finally:
        svc.shutdown()
        thread.join(10)


def run_worker(url, **kwargs) -> ServiceWorker:
    worker = ServiceWorker(url, quiet=True, **kwargs)
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    worker._thread = thread
    return worker


def stop_worker(worker: ServiceWorker) -> None:
    worker.stop()
    worker._thread.join(10)


def test_worker_serves_submitted_jobs(coordinator):
    client = ServiceClient(coordinator.url)
    pending = [client.submit({"source": SRC}),
               client.submit({"source": SRC + "// second"})]
    worker = run_worker(coordinator.url, name="w-test")
    try:
        for job in pending:
            done = client.submit({"source": SRC}
                                 if job is pending[0]
                                 else {"source": SRC + "// second"},
                                 wait=True, wait_timeout=60.0)
            assert done["status"] == "done"
            assert done["result"]["output_preview"] == [1770]
    finally:
        stop_worker(worker)
    assert worker.completed == 2
    stats = client.stats()["scheduler"]
    assert stats["remote_workers"] == 1
    assert stats["leases"] >= 2
    registry = client.workers()
    assert len(registry) == 1 and registry[0]["name"] == "w-test"
    assert registry[0]["completed"] == 2


def test_worker_max_jobs_and_give_up(coordinator):
    client = ServiceClient(coordinator.url)
    client.submit({"source": SRC})
    worker = ServiceWorker(coordinator.url, quiet=True, max_jobs=1,
                           give_up_after=30.0)
    served = worker.run()  # returns on its own after one job
    assert served == 1
    assert client.submit({"source": SRC}, wait=True)["status"] == "done"


def test_worker_gives_up_when_idle(coordinator):
    worker = ServiceWorker(coordinator.url, quiet=True,
                           give_up_after=0.2, poll_interval=0.05)
    assert worker.run() == 0


def test_corrupt_fault_drives_poisoning(coordinator):
    # Every lease of this job returns garbage; after the coordinator's
    # retry budget (2) the job degrades to a CorruptResult error row —
    # and an honest job queued behind it still completes.
    client = ServiceClient(coordinator.url)
    bad = client.submit({"source": SRC + "// doomed"})
    good = client.submit({"source": SRC + "// fine"})
    label = bad["job"]
    injector = ServiceFaultInjector.parse([f"corrupt@{label}"])
    worker = run_worker(coordinator.url, injector=injector,
                        poll_interval=0.05)
    try:
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            snap = client.job(bad["id"])
            if snap["status"] in ("done", "error", "timeout"):
                break
            time.sleep(0.05)
        assert snap["status"] == "error"
        assert snap["error_type"] == "CorruptResult"
        assert snap["attempts"] == 3
        done = client.job(good["id"])
        deadline = time.monotonic() + 60.0
        while (done["status"] not in ("done", "error")
               and time.monotonic() < deadline):
            time.sleep(0.05)
            done = client.job(good["id"])
        assert done["status"] == "done"
        stats = client.stats()["scheduler"]
        assert stats["corrupt_results"] == 3
        assert stats["poisoned"] == 1
    finally:
        stop_worker(worker)


def test_stale_worker_completion_is_resolved_idempotently(coordinator):
    # A 'stale' worker stops heartbeating, outlives its lease, then
    # completes late.  Meanwhile an honest worker re-leases the job and
    # finishes it first — the coordinator must count the late report as
    # a duplicate, not re-finish the job.
    client = ServiceClient(coordinator.url)
    job = client.submit({"source": SRC + "// contested"})
    stale = run_worker(
        coordinator.url, name="stale",
        injector=ServiceFaultInjector.parse(["stale@1"]),
        poll_interval=0.05,
    )
    try:
        # Wait until the stale worker owns the lease, then start the
        # honest worker so it can only get the job after expiry.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if client.stats()["scheduler"]["leases"] >= 1:
                break
            time.sleep(0.02)
        honest = run_worker(coordinator.url, name="honest",
                            poll_interval=0.05)
        try:
            done = client.submit({"source": SRC + "// contested"},
                                 wait=True, wait_timeout=60.0)
            assert done["status"] == "done"
            assert done["id"] == job["id"]

            def duplicates():
                return client.stats()["scheduler"][
                    "duplicate_completions"]

            # Two completion reports race for one job.  Either the
            # honest re-lease wins and the stale late report counts as
            # a duplicate, or the stale (structurally valid) report
            # lands first and simply wins — both are legal; the
            # deterministic orderings are pinned in test_leases.py.
            # Either way the job must finish exactly once, via a real
            # expiry + requeue.
            deadline = time.monotonic() + 10.0
            while duplicates() == 0 and time.monotonic() < deadline:
                time.sleep(0.05)
            stats = client.stats()["scheduler"]
            assert stats["completed"] == 1  # never double-finished
            assert stats["duplicate_completions"] <= 1
            assert stats["requeued"] >= 1
            assert stats["lease_expired"] >= 1
        finally:
            stop_worker(honest)
    finally:
        stop_worker(stale)


def test_worker_reregisters_after_coordinator_forgets_it(coordinator):
    client = ServiceClient(coordinator.url)
    worker = run_worker(coordinator.url, poll_interval=0.05)
    try:
        deadline = time.monotonic() + 10.0
        while (not client.workers()
               and time.monotonic() < deadline):
            time.sleep(0.02)
        # Simulate a coordinator that lost its registry (restart).
        coordinator.scheduler._remote.clear()
        job = client.submit({"source": SRC + "// after restart"},
                            wait=True, wait_timeout=60.0)
        assert job["status"] == "done"
    finally:
        stop_worker(worker)
