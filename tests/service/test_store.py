"""ResultStore: atomicity, corruption, LRU eviction, key stability."""

import multiprocessing
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service.store import RESULT_CODE_VERSION, ResultStore

_FORK = multiprocessing.get_context("fork")


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


def test_round_trip(store):
    key = store.key("alpha", 1.5, {"a": [1, 2]})
    assert store.get(key) is None
    store.put(key, {"rows": [1.0, 2.0], "tag": "x"})
    assert store.get(key) == {"rows": [1.0, 2.0], "tag": "x"}
    assert store.hits == 1 and store.misses == 1


def test_forget(store):
    key = store.key("gone")
    store.put(key, 1)
    store.forget(key)
    assert store.get(key) is None


def test_key_includes_code_version(store):
    assert RESULT_CODE_VERSION == 1  # bumping must be a conscious act
    key = store.key("a")
    assert key != store.key("a", 2)
    assert key != store.key("b")
    assert key == store.key("a")


def test_truncated_entry_is_a_miss_and_deleted(store):
    key = store.key("trunc")
    path = store.put(key, {"value": list(range(100))})
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    assert store.get(key) is None
    assert store.corrupt == 1
    assert not path.exists()  # poisoned entry removed
    # The slot is usable again.
    store.put(key, {"value": 1})
    assert store.get(key) == {"value": 1}


def test_flipped_byte_is_a_miss(store):
    key = store.key("flip")
    path = store.put(key, b"payload-bytes" * 10)
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0xFF
    path.write_bytes(bytes(blob))
    assert store.get(key) is None
    assert store.corrupt == 1


def test_garbage_file_is_a_miss(store):
    key = store.key("garbage")
    store.root.mkdir(parents=True, exist_ok=True)
    store.path(key).write_bytes(b"not a store entry")
    assert store.get(key) is None
    assert store.corrupt == 1


def test_eviction_is_lru(tmp_path):
    # Entries are ~1.1 KiB each; bound the store to three of them.
    store = ResultStore(tmp_path / "store", max_bytes=3500)
    payload = {"pad": b"x" * 1000}
    keys = {name: store.key(name) for name in "abc"}
    for name in "abc":
        store.put(keys[name], dict(payload, name=name))
    # Make the access order unambiguous: a < b < c by mtime.
    now = time.time()
    for age, name in ((300, "a"), (200, "b"), (100, "c")):
        os.utime(store.path(keys[name]), (now - age, now - age))
    # Touching `a` makes `b` the least recently used.
    assert store.get(keys["a"]) is not None
    store.put(store.key("d"), dict(payload, name="d"))
    assert store.get(keys["b"]) is None  # evicted
    assert store.get(keys["a"]) is not None
    assert store.get(keys["c"]) is not None
    assert store.get(store.key("d")) is not None
    assert store.evictions == 1


def test_just_written_entry_survives_tight_bound(tmp_path):
    store = ResultStore(tmp_path / "store", max_bytes=10)
    key = store.key("big")
    store.put(key, b"y" * 1000)  # alone over the bound: still kept
    assert store.get(key) is not None
    # A second entry forces the first out but keeps itself.
    key2 = store.key("big2")
    store.put(key2, b"z" * 1000)
    assert store.get(key2) is not None
    assert store.get(key) is None


def test_stats_shape(store):
    store.put(store.key("s"), 1)
    stats = store.stats()
    assert stats["entries"] == 1
    assert stats["size_bytes"] > 0
    for field in ("hits", "misses", "corrupt", "evictions", "max_bytes"):
        assert field in stats


def _fork_writer(root, worker, key_common):
    store = ResultStore(root)
    for round_ in range(5):
        store.put(key_common, {"worker": worker, "round": round_})
        store.put(store.key("own", worker), {"worker": worker})
    read = store.get(key_common)
    os._exit(0 if isinstance(read, dict) and "worker" in read else 1)


def test_concurrent_forked_writers(tmp_path):
    """Racing writers never corrupt an entry or crash a reader."""
    root = tmp_path / "store"
    store = ResultStore(root)
    key_common = store.key("shared")
    procs = [
        _FORK.Process(target=_fork_writer, args=(root, w, key_common))
        for w in range(4)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(30)
        assert proc.exitcode == 0
    # Whatever writer won, the shared entry decodes cleanly...
    final = store.get(key_common)
    assert isinstance(final, dict) and final["round"] == 4
    # ...and every per-worker entry landed.
    for worker in range(4):
        assert store.get(store.key("own", worker)) == {"worker": worker}
    assert store.corrupt == 0


def test_key_stable_across_processes(tmp_path):
    """The same logical parts key identically under another hash seed."""
    parts = (
        "job", 1.25, {"nested": [1, 2, {"deep": "x"}]},
        frozenset({"p", "q"}), ("tuple", 3),
    )
    local = ResultStore.key(*parts)
    src = Path(__file__).resolve().parents[2] / "src"
    env = dict(os.environ, PYTHONPATH=str(src), PYTHONHASHSEED="12345")
    script = (
        "from repro.service.store import ResultStore\n"
        "parts = ('job', 1.25, {'nested': [1, 2, {'deep': 'x'}]}, "
        "frozenset({'p', 'q'}), ('tuple', 3))\n"
        "print(ResultStore.key(*parts))\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", script], env=env,
        capture_output=True, text=True, timeout=60, check=True,
    )
    assert out.stdout.strip() == local


def test_put_fsyncs_file_and_directory(store, monkeypatch):
    synced = []
    real_fsync = os.fsync

    def recording_fsync(fd):
        synced.append(os.fstat(fd).st_mode)
        return real_fsync(fd)

    monkeypatch.setattr(os, "fsync", recording_fsync)
    key = store.key("durable")
    store.put(key, {"value": 42})
    import stat
    kinds = [stat.S_ISDIR(mode) for mode in synced]
    assert kinds.count(False) == 1  # the tempfile, before the rename
    assert kinds.count(True) == 1   # the directory, after the rename
    assert store.get(key) == {"value": 42}


def test_put_survives_unfsyncable_directory(store, monkeypatch):
    # Platforms where directories cannot be opened/fsynced must still
    # publish the entry (durability degrades, atomicity does not).
    real_open = os.open

    def failing_open(path, flags, *args, **kwargs):
        if Path(path) == store.root and flags == os.O_RDONLY:
            raise OSError("directories not openable here")
        return real_open(path, flags, *args, **kwargs)

    monkeypatch.setattr(os, "open", failing_open)
    key = store.key("no-dirsync")
    store.put(key, "still published")
    assert store.get(key) == "still published"
