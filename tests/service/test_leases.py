"""Lease tier of the scheduler: grant, heartbeat, expiry, recovery.

These tests drive the coordinator surface directly (no HTTP, no worker
processes): a test plays the role of a remote worker by calling
``register_worker`` / ``lease_job`` / ``heartbeat`` / ``complete``
with fabricated-but-valid result payloads, so each scenario runs in
milliseconds and the timing knobs (lease TTL, per-attempt deadline)
can be tiny.
"""

import time

import pytest

from repro.harness.runner import RunnerConfig
from repro.service.scheduler import JobScheduler, UnknownWorker
from repro.service.jobs import JobSpec
from repro.service.store import ResultStore

SRC = "int main() { print_int(7); return 0; }"


def make_scheduler(tmp_path, lease_ttl=0.4, retries=2, timeout=0.0,
                   jobs=0, backoff=0.01):
    sched = JobScheduler(
        ResultStore(tmp_path / "store"),
        jobs=jobs,
        config=RunnerConfig(timeout=timeout, retries=retries,
                            backoff=backoff),
        lease_ttl=lease_ttl,
    )
    return sched.start()


def spec(tag: str) -> JobSpec:
    # Distinct single-line sources make distinct, valid job specs
    # without ever compiling anything (results are fabricated).
    return JobSpec(source=SRC.replace("7", str(len(tag)) + "7") + f"//{tag}")


def valid_result(job) -> dict:
    return {
        "job": job.spec.label(),
        "config": "baseline",
        "cycles": 100,
        "baseline_cycles": 100,
        "speedup": 1.0,
    }


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


def lease_until(sched, worker_id, timeout=5.0):
    """Poll lease_job until a lease is granted (rides out backoff)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        leased = sched.lease_job(worker_id)
        if leased is not None:
            return leased
        time.sleep(0.01)
    return None


def test_register_lease_complete_lifecycle(tmp_path):
    sched = make_scheduler(tmp_path)
    try:
        reg = sched.register_worker("w1")
        assert reg["worker_id"] == "w-0001"
        assert reg["lease_ttl"] == pytest.approx(0.4)
        assert reg["heartbeat_interval"] < reg["lease_ttl"]

        assert sched.lease_job(reg["worker_id"]) is None  # empty queue
        job = sched.submit(spec("a"))
        leased = sched.lease_job(reg["worker_id"])
        assert leased["job_id"] == job.id
        assert leased["attempt"] == 1
        assert leased["spec"] == job.spec.to_dict()
        assert job.status == "running"

        beat = sched.heartbeat(reg["worker_id"], job_id=job.id,
                               lease_id=leased["lease_id"],
                               progress="simulating")
        assert beat == {"ok": True, "abandon": False}
        assert job.snapshot()["progress"] == "simulating"

        ack = sched.complete(reg["worker_id"], job.id,
                             leased["lease_id"], ok=True,
                             result=valid_result(job))
        assert ack == {"accepted": True, "duplicate": False}
        assert job.wait(2.0) and job.status == "done"
        # The result was published: an identical submit is a cache hit.
        again = sched.submit(spec("a"))
        assert again.cached and again.result == valid_result(job)
        stats = sched.stats()
        assert stats["leases"] == 1
        assert stats["heartbeats"] == 1
        assert stats["remote_workers"] == 1
    finally:
        sched.stop()


def test_unknown_worker_rejected(tmp_path):
    sched = make_scheduler(tmp_path)
    try:
        with pytest.raises(UnknownWorker):
            sched.lease_job("w-9999")
        with pytest.raises(UnknownWorker):
            sched.heartbeat("w-9999")
    finally:
        sched.stop()


def test_missed_heartbeats_requeue_then_another_worker_wins(tmp_path):
    sched = make_scheduler(tmp_path, lease_ttl=0.15)
    try:
        job = sched.submit(spec("b"))
        w1 = sched.register_worker("w1")["worker_id"]
        w2 = sched.register_worker("w2")["worker_id"]
        first = sched.lease_job(w1)
        assert first["job_id"] == job.id
        # w1 goes silent; the lease expires and the job is requeued.
        assert wait_for(lambda: sched.stats()["requeued"] >= 1)
        assert sched.stats()["lease_expired"] >= 1
        second = lease_until(sched, w2)  # waits out the retry backoff
        assert second is not None
        assert second["job_id"] == job.id
        assert second["attempt"] == 2
        # w1's heartbeat on the lost lease says to abandon the work.
        beat = sched.heartbeat(w1, job_id=job.id,
                               lease_id=first["lease_id"])
        assert beat["abandon"] is True
        ack = sched.complete(w2, job.id, second["lease_id"], ok=True,
                             result=valid_result(job))
        assert ack["accepted"] is True
        assert job.wait(2.0) and job.status == "done"
    finally:
        sched.stop()


def test_duplicate_completion_is_idempotent(tmp_path):
    sched = make_scheduler(tmp_path, lease_ttl=0.15)
    try:
        job = sched.submit(spec("c"))
        w1 = sched.register_worker()["worker_id"]
        w2 = sched.register_worker()["worker_id"]
        first = sched.lease_job(w1)
        assert wait_for(lambda: sched.stats()["requeued"] >= 1)
        second = lease_until(sched, w2)
        assert second is not None
        ack2 = sched.complete(w2, job.id, second["lease_id"], ok=True,
                              result=valid_result(job))
        assert ack2["accepted"] is True
        # The stale worker wakes up and reports the same (valid) result.
        ack1 = sched.complete(w1, job.id, first["lease_id"], ok=True,
                              result=valid_result(job))
        assert ack1 == {"accepted": False, "duplicate": True}
        stats = sched.stats()
        assert stats["duplicate_completions"] == 1
        assert stats["completed"] == 1  # finished exactly once
        assert job.status == "done"
    finally:
        sched.stop()


def test_stale_valid_completion_wins_if_job_unfinished(tmp_path):
    # The lease expired and the job was requeued, but nobody else
    # finished it yet: the late valid result is accepted (it is as good
    # as any retry's), idempotently via the content-addressed key.
    sched = make_scheduler(tmp_path, lease_ttl=0.15, backoff=30.0)
    try:
        job = sched.submit(spec("d"))
        w1 = sched.register_worker()["worker_id"]
        first = sched.lease_job(w1)
        assert wait_for(lambda: sched.stats()["requeued"] >= 1)
        assert job.status == "queued"  # backing off, not yet re-leased
        ack = sched.complete(w1, job.id, first["lease_id"], ok=True,
                             result=valid_result(job))
        assert ack["accepted"] is True
        assert job.wait(2.0) and job.status == "done"
    finally:
        sched.stop()


def test_corrupt_results_consume_retries_then_poison(tmp_path):
    sched = make_scheduler(tmp_path, retries=1)
    try:
        job = sched.submit(spec("e"))
        w1 = sched.register_worker()["worker_id"]
        for expected_attempt in (1, 2):
            leased = lease_until(sched, w1)
            assert leased is not None
            assert leased["attempt"] == expected_attempt
            ack = sched.complete(w1, job.id, leased["lease_id"], ok=True,
                                 result={"garbage": True})
            assert ack == {"accepted": False, "corrupt": True}
        assert job.wait(2.0)
        assert job.status == "error"
        assert job.error_type == "CorruptResult"
        stats = sched.stats()
        assert stats["corrupt_results"] == 2
        assert stats["poisoned"] == 1
        # The queue is not wedged: another job still flows.
        other = sched.submit(spec("f"))
        leased = lease_until(sched, w1)
        assert leased is not None
        assert leased["job_id"] == other.id
        sched.complete(w1, other.id, leased["lease_id"], ok=True,
                       result=valid_result(other))
        assert other.wait(2.0) and other.status == "done"
    finally:
        sched.stop()


def test_worker_reported_failure_retries_then_errors(tmp_path):
    sched = make_scheduler(tmp_path, retries=1)
    try:
        job = sched.submit(spec("g"))
        w1 = sched.register_worker()["worker_id"]
        for _ in range(2):
            leased = lease_until(sched, w1)
            assert leased is not None
            sched.complete(w1, job.id, leased["lease_id"], ok=False,
                           error="boom", error_type="InjectedFault")
        assert job.wait(2.0)
        assert job.status == "error"
        assert job.error_type == "InjectedFault"
        assert job.attempts == 2
    finally:
        sched.stop()


def test_hang_with_heartbeats_hits_deadline_and_is_terminal(tmp_path):
    # A worker that heartbeats but never completes is caught by the
    # per-attempt deadline — terminal TIMEOUT, never retried, matching
    # the local runner's semantics.
    sched = make_scheduler(tmp_path, lease_ttl=5.0, retries=3,
                           timeout=0.2)
    try:
        job = sched.submit(spec("h"))
        w1 = sched.register_worker()["worker_id"]
        leased = sched.lease_job(w1)
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and not job.finished:
            sched.heartbeat(w1, job_id=job.id,
                            lease_id=leased["lease_id"])
            time.sleep(0.05)
        assert job.status == "timeout"
        assert job.attempts == 1  # timeouts are not retried
        beat = sched.heartbeat(w1, job_id=job.id,
                               lease_id=leased["lease_id"])
        assert beat["abandon"] is True
    finally:
        sched.stop()


def test_releasing_worker_abandons_previous_lease(tmp_path):
    sched = make_scheduler(tmp_path, lease_ttl=60.0)
    try:
        job_a = sched.submit(spec("i"))
        job_b = sched.submit(spec("j"))
        w1 = sched.register_worker()["worker_id"]
        first = sched.lease_job(w1)
        assert first["job_id"] == job_a.id
        # The worker restarts (same id) and leases again without ever
        # completing: the old lease is implicitly abandoned and its job
        # goes back on the queue behind the backoff.
        second = sched.lease_job(w1)
        assert second["job_id"] == job_b.id
        assert wait_for(lambda: sched.stats()["requeued"] >= 1)
        assert job_a.status == "queued"
    finally:
        sched.stop()


def test_coordinator_only_scheduler_runs_no_local_workers(tmp_path):
    sched = make_scheduler(tmp_path, jobs=0)
    try:
        assert sched.stats()["workers"] == 0
        job = sched.submit(spec("k"))
        time.sleep(0.2)
        assert job.status == "queued"  # nothing local will ever run it
    finally:
        sched.stop()
        assert job.status == "error"
        assert job.error_type == "SchedulerStopped"


def test_stop_strands_leased_jobs(tmp_path):
    sched = make_scheduler(tmp_path, lease_ttl=60.0)
    try:
        job = sched.submit(spec("l"))
        w1 = sched.register_worker()["worker_id"]
        sched.lease_job(w1)
    finally:
        sched.stop()
    assert job.status == "error"
    assert job.error_type == "SchedulerStopped"


def _pause_reaper(sched):
    """Stop the scheduler's poll loop without tearing the scheduler
    down, so a test can hit the heartbeat path in the
    expired-but-not-yet-reaped window deterministically.  ``_thread``
    stays set (lease_job and friends require a started scheduler);
    ``stop()`` afterwards still works (the join returns immediately).
    """
    sched._stop.set()
    sched._wake.set()
    sched._thread.join()


def test_late_heartbeat_revokes_instead_of_rearming(tmp_path):
    # A heartbeat arriving after the lease's expiry instant but before
    # the reaper sweeps it must NOT re-arm the lease: it tears the
    # lease down, requeues the job, and tells the worker to abandon.
    sched = make_scheduler(tmp_path, lease_ttl=60.0, backoff=0.0)
    try:
        _pause_reaper(sched)
        job = sched.submit(spec("m"))
        w1 = sched.register_worker()["worker_id"]
        w2 = sched.register_worker()["worker_id"]
        first = sched.lease_job(w1)
        assert first is not None and first["attempt"] == 1
        # The lease passes its expiry with no reaper running.
        job.lease.expires = time.monotonic() - 0.001
        beat = sched.heartbeat(w1, job_id=job.id,
                               lease_id=first["lease_id"])
        assert beat["abandon"] is True
        assert beat["revoked"] is True
        # Revoked, not resurrected: no lease, job back in the queue.
        assert job.lease is None
        assert job.status == "queued"
        assert sched.stats()["lease_expired"] == 1
        assert sched.stats()["requeued"] == 1
        # A second late heartbeat on the same dead lease is a plain
        # abandon (nothing left to revoke) and must not requeue again.
        beat = sched.heartbeat(w1, job_id=job.id,
                               lease_id=first["lease_id"])
        assert beat["abandon"] is True
        assert "revoked" not in beat
        assert sched.stats()["requeued"] == 1
        # The obedient w1 aborts; w2 picks the job up and finishes it.
        second = lease_until(sched, w2)
        assert second is not None
        assert second["job_id"] == job.id
        assert second["attempt"] == 2
        # w1's heartbeat against its old lease still says abandon even
        # while w2 holds a live lease on the same job.
        beat = sched.heartbeat(w1, job_id=job.id,
                               lease_id=first["lease_id"])
        assert beat["abandon"] is True
        ack = sched.complete(w2, job.id, second["lease_id"], ok=True,
                             result=valid_result(job))
        assert ack["accepted"] is True
        # Executed (to completion) exactly once.
        stats = sched.stats()
        assert stats["completed"] == 1
        assert stats["duplicate_completions"] == 0
        assert job.status == "done"
    finally:
        sched.stop()


def test_live_heartbeat_still_renews(tmp_path):
    # The revocation path must not break ordinary renewal: a heartbeat
    # before expiry pushes the lease out by a fresh TTL.
    sched = make_scheduler(tmp_path, lease_ttl=60.0)
    try:
        job = sched.submit(spec("n"))
        w1 = sched.register_worker()["worker_id"]
        leased = sched.lease_job(w1)
        before = job.lease.expires
        job.lease.expires = before - 30.0  # half-spent lease
        beat = sched.heartbeat(w1, job_id=job.id,
                               lease_id=leased["lease_id"],
                               progress="halfway")
        assert beat == {"ok": True, "abandon": False}
        assert job.lease is not None
        assert job.lease.expires > before - 1.0
        assert job.lease.progress == "halfway"
    finally:
        sched.stop()
