"""ServiceClient transport resilience: what retries, and what must not.

The retry policy is tested by monkeypatching the one seam that touches
the network (``ServiceClient._open``), so every scenario — refused,
reset mid-flight, server answered — runs deterministically with no
sockets and a zero backoff.
"""

import io
import urllib.error

import pytest

from repro.service.client import ServiceClient, ServiceError


class Script:
    """Feed ``_open`` a sequence of exceptions, then a response."""

    def __init__(self, *steps):
        self.steps = list(steps)
        self.calls = 0

    def __call__(self, request):
        self.calls += 1
        step = self.steps.pop(0)
        if isinstance(step, BaseException):
            raise step
        return step


def make_client(script, retries=2):
    client = ServiceClient("http://127.0.0.1:1", retries=retries,
                           retry_backoff=0.0)
    client._open = script
    return client


def refused():
    # urllib wraps connect-phase OSErrors in URLError.
    return urllib.error.URLError(ConnectionRefusedError(111, "refused"))


def test_idempotent_get_retries_transient_errors():
    script = Script(refused(), ConnectionResetError("reset"),
                    {"status": "ok"})
    client = make_client(script)
    assert client.stats() == {"status": "ok"}
    assert script.calls == 3


def test_retry_budget_is_bounded():
    script = Script(*[refused()] * 4)
    client = make_client(script, retries=2)
    with pytest.raises(ServiceError) as exc:
        client.stats()
    assert exc.value.status == 0
    assert script.calls == 3  # 1 try + 2 retries


def test_submit_retries_refused_connection():
    # Connection refused = the request never left this host, so even a
    # non-idempotent submit may retry it.
    script = Script(refused(), {"id": "job-000001", "status": "queued"})
    client = make_client(script)
    assert client.submit({"source": "int main() { return 0; }"})[
        "id"] == "job-000001"
    assert script.calls == 2


def test_submit_never_retries_after_send():
    # A reset after the request may have reached the server: replaying
    # could enqueue duplicate work, so the client must fail instead.
    script = Script(ConnectionResetError("reset mid-flight"),
                    {"id": "never", "status": "queued"})
    client = make_client(script)
    with pytest.raises(ServiceError) as exc:
        client.submit({"source": "int main() { return 0; }"})
    assert exc.value.status == 0
    assert script.calls == 1
    script2 = Script(ConnectionResetError("reset"), {"count": 0})
    client2 = make_client(script2)
    with pytest.raises(ServiceError):
        client2.batch([{"source": "int main() { return 0; }"}])
    assert script2.calls == 1


def test_http_errors_are_never_retried():
    def http_error():
        return urllib.error.HTTPError(
            "http://127.0.0.1:1/v1/jobs", 429,
            "Too Many Requests", {},
            io.BytesIO(b'{"error": "queue full"}'),
        )

    script = Script(http_error(), {"status": "ok"})
    client = make_client(script)
    with pytest.raises(ServiceError) as exc:
        client.stats()
    assert exc.value.status == 429
    assert exc.value.message == "queue full"
    assert script.calls == 1


def test_worker_protocol_calls_are_retried():
    # lease/heartbeat/complete are idempotent by protocol design
    # (duplicates resolve coordinator-side), so they retry resets too.
    script = Script(ConnectionResetError("reset"),
                    {"job": None})
    client = make_client(script)
    assert client.lease("w-0001") is None
    assert script.calls == 2
