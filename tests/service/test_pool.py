"""The Pool protocol: LocalPool over forked workers, RemotePool mapping.

LocalPool is exercised against real forked workers running the
``service`` task kind (tiny raw-source jobs, no workload compilation).
RemotePool is exercised against fake clients, so its submit/poll/
failure mapping is tested without sockets; the real HTTP path is
covered by tests/harness/test_distributed.py.
"""

import time

import pytest

from repro.service.client import ServiceError
from repro.service.jobs import JobSpec
from repro.service.pool import LocalPool, RemotePool
from repro.sim.machine import MachineConfig

SRC = """
int main() {
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < 40; i = i + 1) {
        acc = acc + i;
    }
    print_int(acc);
    return 0;
}
"""

SRC_SLOW = SRC.replace("< 40", "< 900000")


@pytest.fixture
def pool(tmp_path):
    p = LocalPool(
        {"artifact_dir": str(tmp_path), "machine": MachineConfig()},
        size=2,
    )
    try:
        yield p
    finally:
        p.stop()


def task(task_id: str, source: str) -> dict:
    return {
        "id": task_id,
        "kind": "service",
        "payload": {"spec": JobSpec(source=source), "name": task_id},
    }


def drain(pool, want: int, timeout: float = 30.0):
    out = []
    deadline = time.monotonic() + timeout
    while len(out) < want and time.monotonic() < deadline:
        out.extend(pool.poll(0.1))
    return out


def test_local_pool_runs_tasks(pool):
    assert pool.idle() == 2 and not pool.busy()
    pool.submit(task("t1", SRC))
    pool.submit(task("t2", SRC + "// variant"))
    assert pool.idle() == 0 and pool.busy()
    assert len(pool.running()) == 2
    results = dict(
        (tid, (ok, res)) for tid, ok, res in drain(pool, 2)
    )
    assert set(results) == {"t1", "t2"}
    for ok, res in results.values():
        assert ok and res["output_preview"] == [780]
    assert pool.idle() == 2 and not pool.busy()


def test_local_pool_reports_task_errors(pool):
    pool.submit(task("bad", "not a program"))
    [(tid, ok, result)] = drain(pool, 1)
    assert tid == "bad" and not ok
    error_type, message = result[0], result[1]
    assert error_type  # the exception class name, e.g. ParseError
    assert isinstance(message, str)
    # The worker survives a failing task.
    pool.submit(task("good", SRC))
    [(_, ok2, res2)] = drain(pool, 1)
    assert ok2 and res2["output_preview"] == [780]


def test_local_pool_kill_task_respawns_worker(pool):
    pool.submit(task("slow", SRC_SLOW))
    assert pool.kill_task("slow") is True
    assert pool.kill_task("slow") is False  # already gone
    assert pool.idle() == 2
    # The respawned worker still serves.
    pool.submit(task("after", SRC))
    [(tid, ok, res)] = drain(pool, 1)
    assert tid == "after" and ok and res["output_preview"] == [780]


class FakeClient:
    """Scripted coordinator: canned submit snapshot + poll sequence."""

    def __init__(self, submit_snap=None, polls=(), submit_exc=None):
        self.submit_snap = submit_snap
        self.polls = list(polls)
        self.submit_exc = submit_exc
        self.submitted = []

    def submit(self, spec, **kwargs):
        if self.submit_exc is not None:
            raise self.submit_exc
        self.submitted.append(spec)
        return dict(self.submit_snap)

    def job(self, job_id):
        step = self.polls.pop(0)
        if isinstance(step, Exception):
            raise step
        return dict(step)


def rows_task(task_id: str, name: str) -> dict:
    return {
        "id": task_id,
        "kind": "rows_full",
        "payload": {"name": name, "scale": 0.02, "verify_ir": True},
    }


DONE_SNAP = {
    "id": "job-000001", "status": "done", "attempts": 1,
    "cached": False,
    "result": {"suite": "mediabench", "rows": {"table3": {"x": 1}}},
}


def test_remote_pool_rejects_other_task_kinds():
    pool = RemotePool([], clients=[FakeClient()])
    with pytest.raises(ValueError):
        pool.submit({"id": "t", "kind": "sim", "payload": {}})


def test_remote_pool_maps_done_and_spec_fields():
    client = FakeClient(
        submit_snap={"id": "job-000001", "status": "queued"},
        polls=[DONE_SNAP],
    )
    pool = RemotePool([], clients=[client], poll_interval=0.0)
    pool.submit(rows_task("t1", "adpcm_decode"))
    assert client.submitted == [{
        "kind": "rows",
        "workload": "adpcm_decode",
        "scale": 0.02,
        "verify_ir": True,
    }]
    [(tid, ok, result)] = pool.poll(1.0)
    assert tid == "t1" and ok
    assert result["rows"] == {"table3": {"x": 1}}
    assert result["attempts"] == 1 and result["cached"] is False
    assert not pool.busy()


def test_remote_pool_maps_failures_with_remote_attempts():
    client = FakeClient(
        submit_snap={"id": "job-000002", "status": "queued"},
        polls=[{"id": "job-000002", "status": "error", "attempts": 3,
                "error": "poisoned", "error_type": "LeaseExpired"}],
    )
    pool = RemotePool([], clients=[client], poll_interval=0.0)
    assert pool.handles_retries  # the caller must not retry these
    pool.submit(rows_task("t1", "adpcm_decode"))
    [(tid, ok, result)] = pool.poll(1.0)
    assert tid == "t1" and not ok
    assert result == ("LeaseExpired", "poisoned", 3)


def test_remote_pool_round_robins_coordinators():
    clients = [
        FakeClient(submit_snap=dict(DONE_SNAP, id=f"job-{i}"))
        for i in range(2)
    ]
    pool = RemotePool([], clients=clients, poll_interval=0.0)
    for i in range(4):
        pool.submit(rows_task(f"t{i}", "adpcm_decode"))
    assert len(clients[0].submitted) == 2
    assert len(clients[1].submitted) == 2
    # Immediate done snapshots surface on the next poll.
    assert len(pool.poll(0.0)) == 4


def test_remote_pool_unreachable_submit_fails_task():
    client = FakeClient(submit_exc=ServiceError(0, "refused"))
    pool = RemotePool([], clients=[client])
    pool.submit(rows_task("t1", "adpcm_decode"))
    [(tid, ok, result)] = pool.poll(0.0)
    assert tid == "t1" and not ok
    assert result[0] == "CoordinatorUnreachable"


def test_remote_pool_tolerates_transient_poll_misses():
    polls = [ServiceError(0, "refused")] * 3 + [DONE_SNAP]
    client = FakeClient(
        submit_snap={"id": "job-000001", "status": "queued"},
        polls=polls,
    )
    pool = RemotePool([], clients=[client], poll_interval=0.0)
    pool.submit(rows_task("t1", "adpcm_decode"))
    [(tid, ok, _)] = drain_remote(pool)
    assert tid == "t1" and ok


def test_remote_pool_gives_up_after_max_misses():
    polls = [ServiceError(0, "refused")] * (RemotePool.MAX_MISSES + 1)
    client = FakeClient(
        submit_snap={"id": "job-000001", "status": "queued"},
        polls=polls,
    )
    pool = RemotePool([], clients=[client], poll_interval=0.0)
    pool.submit(rows_task("t1", "adpcm_decode"))
    [(tid, ok, result)] = drain_remote(pool)
    assert tid == "t1" and not ok
    assert result[0] == "CoordinatorUnreachable"


def drain_remote(pool, timeout=5.0):
    out = []
    deadline = time.monotonic() + timeout
    while not out and time.monotonic() < deadline:
        out = pool.poll(0.05)
    return out
