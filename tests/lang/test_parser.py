"""Parser tests."""

import pytest

from repro.lang import ast
from repro.lang.errors import ParseError
from repro.lang.parser import parse
from repro.lang.types import ArrayType, PtrType, StructType


def parse_expr(text):
    unit = parse(f"int main() {{ return {text}; }}")
    func = unit.decls[0]
    return func.body.stmts[0].value


def test_empty_unit():
    assert parse("").decls == []


def test_global_scalar():
    unit = parse("int x = 5;")
    decl = unit.decls[0]
    assert isinstance(decl, ast.GlobalVar)
    assert decl.init == 5


def test_global_negative_init():
    assert parse("int x = -3;").decls[0].init == -3


def test_global_array_with_list():
    decl = parse("int a[4] = {1, 2, -3};").decls[0]
    assert isinstance(decl.var_type, ArrayType)
    assert decl.var_type.length == 4
    assert decl.init == [1, 2, -3]


def test_global_char_array_string():
    decl = parse('char s[8] = "hi";').decls[0]
    assert decl.init == "hi"


def test_struct_definition_layout():
    unit = parse("struct point { int x; int y; char tag; };")
    struct = unit.decls[0].struct_type
    assert isinstance(struct, StructType)
    assert struct.field("x") == (struct.field("x")[0], 0)
    assert struct.field("y")[1] == 4
    assert struct.field("tag")[1] == 8
    assert struct.size == 12  # padded to int alignment


def test_struct_multi_declarator_fields():
    struct = parse("struct v { int a, b; };").decls[0].struct_type
    assert struct.field("a")[1] == 0
    assert struct.field("b")[1] == 4


def test_function_params():
    func = parse("int f(int a, char *b, int c[4]) { return 0; }").decls[0]
    assert [p.name for p in func.params] == ["a", "b", "c"]
    assert isinstance(func.params[1].param_type, PtrType)
    # array parameters decay to pointers
    assert isinstance(func.params[2].param_type, PtrType)


def test_void_param_list():
    func = parse("int f(void) { return 0; }").decls[0]
    assert func.params == []


def test_precedence():
    e = parse_expr("1 + 2 * 3")
    assert isinstance(e, ast.Binary) and e.op == "+"
    assert isinstance(e.right, ast.Binary) and e.right.op == "*"


def test_left_associativity():
    e = parse_expr("10 - 3 - 2")
    assert e.op == "-" and isinstance(e.left, ast.Binary)
    assert e.left.op == "-"


def test_comparison_and_logic_precedence():
    e = parse_expr("a < b && c == d || e")
    assert e.op == "||"
    assert e.left.op == "&&"


def test_assignment_right_associative():
    unit = parse("int main() { int a; int b; a = b = 1; return a; }")
    stmt = unit.decls[0].body.stmts[2]
    assert isinstance(stmt.expr, ast.Assign)
    assert isinstance(stmt.expr.rhs, ast.Assign)


def test_ternary():
    e = parse_expr("a ? 1 : 2")
    assert isinstance(e, ast.Cond)


def test_unary_chain():
    e = parse_expr("-~!x")
    assert e.op == "-"
    assert e.operand.op == "~"
    assert e.operand.operand.op == "!"


def test_postfix_chain():
    e = parse_expr("a.b[2]->c")
    assert isinstance(e, ast.Member) and e.arrow
    assert isinstance(e.base, ast.Index)
    assert isinstance(e.base.base, ast.Member)


def test_incdec_postfix_vs_prefix():
    post = parse_expr("x++")
    pre = parse_expr("++x")
    assert post.postfix and not pre.postfix


def test_cast_vs_parenthesized():
    cast = parse_expr("(int) x")
    assert isinstance(cast, ast.Cast)
    grouped = parse_expr("(x)")
    assert isinstance(grouped, ast.Ident)


def test_struct_pointer_cast():
    unit = parse(
        "struct n { int v; };\n"
        "int main() { int p; return ((struct n *) p)->v; }"
    )
    ret = unit.decls[1].body.stmts[1]
    assert isinstance(ret.value, ast.Member)


def test_sizeof():
    e = parse_expr("sizeof(int)")
    assert isinstance(e, ast.SizeOf)
    assert e.target_type.size == 4


def test_call_with_args():
    e = parse_expr("f(1, g(2), x + 1)")
    assert isinstance(e, ast.Call)
    assert len(e.args) == 3
    assert isinstance(e.args[1], ast.Call)


def test_statements_roundtrip():
    unit = parse(
        """
        int main() {
            int i;
            for (i = 0; i < 10; i++) { print_int(i); }
            while (i > 0) { i--; }
            do { i++; } while (i < 3);
            if (i == 3) { i = 0; } else { i = 1; }
            return i;
        }
        """
    )
    body = unit.decls[0].body.stmts
    assert isinstance(body[1], ast.For)
    assert isinstance(body[2], ast.While)
    assert isinstance(body[3], ast.DoWhile)
    assert isinstance(body[4], ast.If)


def test_for_with_declaration_init():
    unit = parse("int main() { for (int i = 0; i < 3; i++) {} return 0; }")
    loop = unit.decls[0].body.stmts[0]
    assert isinstance(loop.init, ast.VarDecl)


def test_empty_for_clauses():
    unit = parse("int main() { for (;;) { break; } return 0; }")
    loop = unit.decls[0].body.stmts[0]
    assert loop.init is None and loop.cond is None and loop.step is None


def test_break_continue_return():
    unit = parse(
        "int main() { while (1) { break; continue; } return; }"
    )
    body = unit.decls[0].body.stmts[0].body.stmts
    assert isinstance(body[0], ast.Break)
    assert isinstance(body[1], ast.Continue)


def test_multi_declarator_locals():
    unit = parse("int main() { int a = 1, b = 2, *c; return a + b; }")
    group = unit.decls[0].body.stmts[0]
    assert isinstance(group, ast.DeclList)  # no scope is opened
    assert len(group.decls) == 3
    assert isinstance(group.decls[2].var_type, PtrType)


@pytest.mark.parametrize(
    "bad",
    [
        "int main() { return 1 }",  # missing semicolon
        "int main() { if 1 {} }",  # missing parens
        "int f(int) { return 0; }",  # unnamed param
        "int a[x];",  # non-constant array size
        "int main() { do {} }",  # do without while
        "struct s { int x; }",  # missing trailing semicolon
    ],
)
def test_syntax_errors(bad):
    with pytest.raises(ParseError):
        parse(bad)


def test_error_position_reported():
    try:
        parse("int main() {\n  return 1 }\n")
    except ParseError as exc:
        assert exc.line == 2
    else:  # pragma: no cover
        pytest.fail("expected ParseError")
