"""Lexer tests."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokKind


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]


def test_empty_source():
    toks = tokenize("")
    assert len(toks) == 1
    assert toks[0].kind is TokKind.EOF


def test_identifiers_and_keywords():
    toks = tokenize("int foo while whilefoo _bar x1")
    assert toks[0].kind is TokKind.KEYWORD
    assert toks[1].kind is TokKind.IDENT
    assert toks[2].kind is TokKind.KEYWORD
    assert toks[3].kind is TokKind.IDENT  # not a keyword prefix match
    assert toks[4].value == "_bar"
    assert toks[5].value == "x1"


def test_decimal_and_hex_literals():
    assert values("0 42 0x10 0xFF") == [0, 42, 16, 255]


def test_float_literals():
    toks = tokenize("1.5 0.25 2e3 1.5e-2")
    assert [t.kind for t in toks[:-1]] == [TokKind.FLOAT_LIT] * 4
    assert toks[0].value == 1.5
    assert toks[2].value == 2000.0
    assert toks[3].value == 0.015


def test_int_then_member_not_float():
    # "x.y" after an int literal boundary: "1 .x" should not merge.
    toks = tokenize("a.b")
    assert [t.value for t in toks[:-1]] == ["a", ".", "b"]


def test_char_literals():
    assert values("'a' '\\n' '\\0' '\\\\'") == [97, 10, 0, 92]


def test_string_literal():
    toks = tokenize('"hi\\nthere"')
    assert toks[0].kind is TokKind.STR_LIT
    assert toks[0].value == "hi\nthere"


def test_multichar_punctuators_longest_match():
    assert values("<<= >>= -> ++ -- << >> <= >= == != && || +=") == [
        "<<=", ">>=", "->", "++", "--", "<<", ">>", "<=", ">=", "==",
        "!=", "&&", "||", "+=",
    ]


def test_line_comments():
    assert values("a // comment\n b") == ["a", "b"]


def test_block_comments():
    assert values("a /* x\n y */ b") == ["a", "b"]


def test_unterminated_block_comment():
    with pytest.raises(LexError):
        tokenize("a /* never ends")


def test_unterminated_string():
    with pytest.raises(LexError):
        tokenize('"abc')
    with pytest.raises(LexError):
        tokenize('"abc\ndef"')


def test_bad_escape():
    with pytest.raises(LexError):
        tokenize("'\\q'")


def test_unexpected_character():
    with pytest.raises(LexError):
        tokenize("a @ b")


def test_positions_tracked():
    toks = tokenize("a\n  b")
    assert (toks[0].line, toks[0].col) == (1, 1)
    assert (toks[1].line, toks[1].col) == (2, 3)


def test_malformed_hex():
    with pytest.raises(LexError):
        tokenize("0x")
