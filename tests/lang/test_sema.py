"""Semantic-analysis tests."""

import pytest

from repro.lang import ast
from repro.lang.errors import SemaError
from repro.lang.parser import parse
from repro.lang.sema import SymKind, analyze
from repro.lang.types import DOUBLE, INT, DoubleType, PtrType


def check(source):
    unit = parse(source)
    return analyze(unit), unit


def expect_error(source, fragment=""):
    with pytest.raises(SemaError) as exc:
        check(source)
    if fragment:
        assert fragment in str(exc.value)


def test_requires_main():
    expect_error("int f() { return 0; }", "main")


def test_forward_function_reference():
    check("int main() { return f(); } int f() { return 1; }")


def test_undeclared_identifier():
    expect_error("int main() { return x; }", "undeclared")


def test_redeclaration_in_same_scope():
    expect_error("int main() { int x; int x; return 0; }", "redeclaration")


def test_shadowing_in_nested_scope_ok():
    check("int main() { int x = 1; { int x = 2; } return x; }")


def test_call_arity_checked():
    expect_error(
        "int f(int a) { return a; } int main() { return f(1, 2); }",
        "expects",
    )


def test_call_undeclared():
    expect_error("int main() { return g(); }", "undeclared function")


def test_builtins_available():
    check("int main() { print_int(1); print_char(65); halt(); return 0; }")


def test_malloc_returns_void_star():
    _, unit = check(
        "struct n { int v; };\n"
        "int main() { struct n *p; p = (struct n*) malloc(8); return p->v; }"
    )


def test_void_star_assignable_without_cast():
    check("int main() { int *p; p = malloc(8); return 0; }")


def test_pointer_int_mismatch_rejected():
    expect_error("int main() { int *p; int x; p = x; return 0; }")


def test_null_pointer_constant_ok():
    check("int main() { int *p = 0; return p == 0; }")


def test_assignment_to_rvalue_rejected():
    expect_error("int main() { 1 = 2; return 0; }", "non-lvalue")


def test_assignment_to_array_rejected():
    expect_error("int a[4]; int b[4]; int main() { a = b; return 0; }")


def test_address_of_non_lvalue():
    expect_error("int main() { int *p = &1; return 0; }")


def test_address_of_marks_symbol():
    _, unit = check("int main() { int x; int *p = &x; return *p; }")
    func = unit.decls[0]
    decl = func.body.stmts[0]
    assert decl.symbol.addr_taken


def test_scalar_local_not_addr_taken():
    _, unit = check("int main() { int x = 1; return x; }")
    assert not unit.decls[0].body.stmts[0].symbol.addr_taken


def test_deref_non_pointer_rejected():
    expect_error("int main() { int x; return *x; }")


def test_member_on_non_struct():
    expect_error("int main() { int x; return x.f; }")


def test_unknown_field():
    expect_error(
        "struct s { int a; }; int main() { struct s v; return v.b; }",
        "no field",
    )


def test_arrow_requires_pointer():
    expect_error(
        "struct s { int a; }; int main() { struct s v; return v->a; }"
    )


def test_break_outside_loop():
    expect_error("int main() { break; return 0; }", "outside")


def test_return_type_checked():
    expect_error("void f() { return 1; } int main() { f(); return 0; }")
    expect_error("int f() { return; } int main() { return f(); }")


def test_mixed_arith_promotes_to_double():
    _, unit = check("int main() { double d = 1.5 + 2; return (int) d; }")
    decl = unit.decls[0].body.stmts[0]
    add = decl.init
    assert isinstance(add.type, DoubleType)
    # the int side got an inserted cast
    assert isinstance(add.right, ast.Cast)


def test_double_to_int_assignment_casts():
    _, unit = check("int main() { int x; x = 2.5; return x; }")
    assign = unit.decls[0].body.stmts[1].expr
    assert isinstance(assign.rhs, ast.Cast)
    assert assign.rhs.type == INT


def test_comparison_yields_int():
    _, unit = check("int main() { return 1.5 < 2.5; }")
    ret = unit.decls[0].body.stmts[0]
    assert ret.value.type == INT


def test_pointer_arith_typing():
    _, unit = check(
        "int main() { int a[4]; int *p = a; int *q = p + 2; return q - p; }"
    )
    body = unit.decls[0].body.stmts
    assert isinstance(body[2].init.type, PtrType)
    assert body[3].value.type == INT


def test_shift_requires_integers():
    expect_error("int main() { return 1.5 << 2; }")


def test_mod_requires_integers():
    expect_error("int main() { return 5.0 % 2; }")


def test_condition_must_be_scalar():
    expect_error(
        "struct s { int a; }; int main() { struct s v; if (v) {} return 0; }"
    )


def test_aggregate_param_rejected():
    expect_error(
        "struct s { int a; }; int f(struct s v) { return 0; } "
        "int main() { return 0; }"
    )


def test_incomplete_struct_rejected():
    expect_error("struct nope x; int main() { return 0; }")


def test_symbol_kinds():
    analyzer, unit = check(
        "int g; int f(int p) { int l; return p + l + g; } "
        "int main() { return f(1); }"
    )
    func = unit.decls[1]
    assert func.params[0].symbol.kind is SymKind.PARAM
    assert func.body.stmts[0].symbol.kind is SymKind.LOCAL
    assert unit.decls[0].symbol.kind is SymKind.GLOBAL


def test_string_literal_type():
    analyzer, unit = check('int main() { char *s = "hi"; return s[0]; }')
    assert len(analyzer.strings) == 1


def test_global_init_validation():
    expect_error('int x = "str";')
    expect_error("int a[2] = {1, 2, 3};", "too many")
    expect_error('char s[2] = "abc";', "too long")
    expect_error('int a[2] = 5;')


def test_function_as_value_rejected():
    expect_error("int f() { return 0; } int main() { return f + 1; }")


def test_compound_assign_type_rules():
    check("int main() { int x = 1; x += 2; x <<= 1; x %= 3; return x; }")
    expect_error("int main() { double d = 1.0; d %= 2.0; return 0; }")
    check("int main() { int a[4]; int *p = a; p += 2; return *p; }")
    expect_error("int main() { int a[4]; int *p = a; p *= 2; return 0; }")
