"""Type-system unit tests."""

import pytest

from repro.lang.types import (
    CHAR,
    DOUBLE,
    INT,
    VOID,
    ArrayType,
    FuncType,
    PtrType,
    StructType,
    common_arith,
    decay,
)


def test_scalar_sizes():
    assert INT.size == 4 and INT.align == 4
    assert CHAR.size == 1 and CHAR.align == 1
    assert DOUBLE.size == 8 and DOUBLE.align == 8
    assert PtrType(INT).size == 4
    assert VOID.size == 0


def test_scalar_predicates():
    assert INT.is_integer and INT.is_scalar and INT.is_arith
    assert CHAR.is_integer
    assert DOUBLE.is_arith and not DOUBLE.is_integer
    assert PtrType(INT).is_scalar and not PtrType(INT).is_arith
    assert not ArrayType(INT, 4).is_scalar


def test_type_equality():
    assert PtrType(INT) == PtrType(INT)
    assert PtrType(INT) != PtrType(CHAR)
    assert ArrayType(INT, 4) == ArrayType(INT, 4)
    assert ArrayType(INT, 4) != ArrayType(INT, 5)
    assert hash(PtrType(INT)) == hash(PtrType(INT))


def test_array_geometry():
    a = ArrayType(INT, 10)
    assert a.size == 40 and a.align == 4
    nested = ArrayType(ArrayType(CHAR, 3), 4)
    assert nested.size == 12


def test_struct_layout_padding():
    s = StructType("mix")
    s.define([("c", CHAR), ("i", INT), ("c2", CHAR)])
    assert s.field("c")[1] == 0
    assert s.field("i")[1] == 4  # aligned up
    assert s.field("c2")[1] == 8
    assert s.size == 12  # padded to align 4
    assert s.align == 4


def test_struct_with_double_field():
    s = StructType("d")
    s.define([("i", INT), ("x", DOUBLE)])
    assert s.field("x")[1] == 8
    assert s.size == 16
    assert s.align == 8


def test_struct_identity_by_name():
    a = StructType("n")
    b = StructType("n")
    assert a == b
    c = StructType("m")
    assert a != c


def test_incomplete_struct_in_field_rejected():
    outer = StructType("outer")
    inner = StructType("inner")  # never defined
    with pytest.raises(ValueError):
        outer.define([("bad", inner)])


def test_decay():
    assert decay(ArrayType(INT, 4)) == PtrType(INT)
    assert decay(INT) == INT
    assert decay(PtrType(INT)) == PtrType(INT)


def test_common_arith():
    assert common_arith(INT, INT) == INT
    assert common_arith(CHAR, INT) == INT
    assert common_arith(INT, DOUBLE) == DOUBLE
    assert common_arith(DOUBLE, DOUBLE) == DOUBLE


def test_func_type():
    f = FuncType(INT, [INT, PtrType(CHAR)])
    g = FuncType(INT, [INT, PtrType(CHAR)])
    assert f == g
    assert "int(" in repr(f) or "int" in repr(f)
