"""Generated-workload subsystem: planner accuracy, determinism,
registry integration, differential driver, and provenance."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.compiler.driver import compile_source
from repro.profiling import profile_trace
from repro.sim.executor import execute
from repro.workloads import get_workload, workload_names
from repro.workloads.gen import (
    CANONICAL,
    GEN_DEFAULT_SCALE,
    TOLERANCE,
    Fingerprint,
    format_fingerprint,
    generate,
    materialize,
    parse_fingerprint,
    parse_gen_name,
    provenance,
)
from repro.workloads.gen.differential import check_program
from repro.workloads.gen.sweep import simplex_tokens

_SRC = str(Path(__file__).resolve().parents[2] / "src")


# -- fingerprint grammar ---------------------------------------------------

def test_fingerprint_roundtrip():
    for token in ("n20p70e10", "n34p33e33-d2", "n15p25e60-a30",
                  "n60p25e15-d3-a40-wl"):
        fp = parse_fingerprint(token)
        assert format_fingerprint(fp) == token


def test_fingerprint_canonical_names():
    for name, fp in CANONICAL.items():
        assert parse_fingerprint(name) == fp


@pytest.mark.parametrize("bad", [
    "", "bogus", "n20p60e30", "n200p0e0", "n20p70e10-x9", "n20p70", "p100",
])
def test_fingerprint_rejects_bad_tokens(bad):
    with pytest.raises(ValueError):
        parse_fingerprint(bad)


def test_fingerprint_validates_fields():
    with pytest.raises(ValueError):
        Fingerprint(nt=0.5, pd=0.5, ec=0.5)
    with pytest.raises(ValueError):
        Fingerprint(nt=0.4, pd=0.3, ec=0.3, depth=9)
    with pytest.raises(ValueError):
        Fingerprint(nt=0.4, pd=0.3, ec=0.3, ws="huge")


def test_parse_gen_name_errors():
    with pytest.raises(ValueError):
        parse_gen_name("gen:strided")
    with pytest.raises(ValueError):
        parse_gen_name("gen:strided:x")
    with pytest.raises(ValueError):
        parse_gen_name("gen:strided:-1")
    with pytest.raises(ValueError):
        parse_gen_name("spec:strided:1")


# -- planner accuracy (acceptance criterion) -------------------------------

@pytest.mark.parametrize("name", sorted(CANONICAL))
def test_planner_hits_canonical_fingerprints(name):
    """±10% per class fraction, measured by the real profiler."""
    plan = generate(CANONICAL[name], seed=0)
    source = plan.source_template.replace(
        "__SCALE__", str(GEN_DEFAULT_SCALE)
    )
    result = compile_source(source)
    shares = profile_trace(
        result.program, execute(result.program).trace
    ).dynamic_class_shares()
    for cls, want in CANONICAL[name].shares().items():
        assert abs(shares[cls] - want) <= TOLERANCE


def test_generated_program_matches_reference_at_other_scales():
    workload = materialize("gen:pointer:11")
    for scale in (1, 2):
        result = compile_source(workload.source(scale))
        assert execute(result.program).output == \
            workload.expected_output(scale)


def test_texture_knobs_shape_the_program():
    deep = generate(parse_fingerprint("n34p33e33-d3"), seed=0)
    flat = generate(parse_fingerprint("n34p33e33"), seed=0)
    # Depth adds decorative loop nests around every kernel's rep loop.
    assert deep.source_template.count("for (o1") > 0
    assert flat.source_template.count("for (o0") == 0
    aliased = generate(parse_fingerprint("n34p33e33-a50"), seed=0)
    assert aliased.weights["alias"] > 0
    assert flat.weights["alias"] == 0


# -- determinism -----------------------------------------------------------

def test_same_seed_same_plan_in_process():
    a = generate(CANONICAL["mixed"], seed=5)
    b = generate(CANONICAL["mixed"], seed=5)
    assert a is b  # cached
    c = generate(CANONICAL["mixed"], seed=6)
    assert c.source_template != a.source_template


_SUBPROC = """
import json, sys
sys.path.insert(0, {src!r})
from repro.workloads.gen import materialize
w = materialize("gen:mixed:17")
print(json.dumps({{
    "source": w.source_template,
    "ref": w.expected_output(2),
}}))
"""


def test_cross_process_determinism():
    """Same name → byte-identical source and reference in any process."""
    outputs = []
    for _ in range(2):
        proc = subprocess.run(
            [sys.executable, "-c", _SUBPROC.format(src=_SRC)],
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        outputs.append(json.loads(proc.stdout))
    assert outputs[0] == outputs[1]
    # ... and identical to this process's materialization.
    local = materialize("gen:mixed:17")
    assert outputs[0]["source"] == local.source_template
    assert outputs[0]["ref"] == local.expected_output(2)


# -- registry integration --------------------------------------------------

def test_registry_materializes_gen_names():
    workload = get_workload("gen:strided:23")
    assert workload.suite == "gen"
    assert workload.name == "gen:n20p70e10:23"  # canonicalized
    assert workload.name in workload_names("gen")
    # Idempotent, and alias spelling resolves to the same object.
    assert get_workload("gen:strided:23") is workload
    assert get_workload("gen:n20p70e10:23") is workload
    # The alias spelling does not create a duplicate registry entry.
    assert workload_names("gen").count("gen:n20p70e10:23") == 1


def test_registry_did_you_mean():
    with pytest.raises(KeyError, match="did you mean '008.espresso'"):
        get_workload("espresso")


def test_registry_bad_gen_name_raises_value_error():
    with pytest.raises(ValueError, match="fingerprint"):
        get_workload("gen:whatever:1")
    with pytest.raises(ValueError, match="seed"):
        get_workload("gen:mixed:one")


def test_workload_scale_validation():
    workload = get_workload("026.compress")
    with pytest.raises(ValueError, match="scale must be a positive"):
        workload.source(0)
    with pytest.raises(ValueError, match="scale must be a positive"):
        workload.expected_output(-3)


# -- differential driver ---------------------------------------------------

def test_differential_check_passes():
    report = check_program("gen:irregular:2", scale=0.25)
    assert report.ok, report.mismatches
    # reference at 3 opt levels + invariance + sim parity
    assert report.checks == 5


def test_differential_detects_broken_reference(monkeypatch):
    import dataclasses

    from repro.workloads.registry import REGISTRY

    workload = materialize("gen:mixed:29")
    broken = dataclasses.replace(
        workload, reference=lambda n: [v + 1 for v in
                                       workload.reference(n)],
    )
    monkeypatch.setitem(REGISTRY, workload.name, broken)
    report = check_program("gen:n34p33e33:29", scale=0.25)
    assert not report.ok
    assert {m.check for m in report.mismatches} == {"reference"}


# -- provenance and obs ----------------------------------------------------

def test_provenance_is_json_ready_and_complete():
    prov = provenance("gen:pointer:4")
    payload = json.loads(json.dumps(prov))
    for key in ("fingerprint", "seed", "requested", "achieved",
                "weights", "depth", "alias", "ws", "budget",
                "iterations"):
        assert key in payload
    assert payload["fingerprint"] == "n15p25e60"
    assert payload["seed"] == 4
    assert set(payload["weights"]) == {
        "strided", "chase", "irregular", "alias"
    }


def test_manifest_records_gen_provenance():
    from repro.obs.manifest import build_manifest, validate_manifest

    manifest = build_manifest(
        command="test", argv=[], scale=1.0, machine=None,
        workloads=[
            {"name": "gen:mixed:0", "status": "ok"},
            {"name": "026.compress", "status": "ok"},
        ],
    )
    gen_entry = manifest["workloads"][0]
    assert gen_entry["gen"]["fingerprint"] == "n34p33e33"
    assert gen_entry["gen"]["seed"] == 0
    assert "gen" not in manifest["workloads"][1]
    assert validate_manifest(manifest) == []
    # A manifest claiming a gen workload without provenance is invalid.
    del gen_entry["gen"]
    problems = validate_manifest(manifest)
    assert any("provenance" in p for p in problems)


def test_gen_fingerprint_event_emitted(tmp_path):
    from repro import obs
    from repro.workloads.gen.planner import plan_program

    obs.configure(tmp_path, command="test", worker="main")
    try:
        plan_program(CANONICAL["strided"], seed=91)
    finally:
        obs.disable()
    events = []
    for path in tmp_path.glob("*.jsonl"):
        for line in path.read_text().splitlines():
            record = json.loads(line)
            if record.get("name") == "gen.fingerprint":
                events.append(record)
    assert events, "no gen.fingerprint event in the trace"
    tags = events[0]["tags"]
    assert tags["fingerprint"] == "n20p70e10"
    assert tags["seed"] == 91
    assert "achieved" in tags and "weights" in tags


# -- sweep grid ------------------------------------------------------------

def test_simplex_tokens_cover_the_grid():
    tokens = simplex_tokens(20)
    assert len(tokens) == 21  # (5+1)(5+2)/2 points at 20% pitch
    assert "n100p0e0" in tokens and "n0p0e100" in tokens
    assert len(set(tokens)) == len(tokens)
    for token in tokens:
        parse_fingerprint(token)
    with pytest.raises(ValueError):
        simplex_tokens(30)
    with pytest.raises(ValueError):
        simplex_tokens(0)
