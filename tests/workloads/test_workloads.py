"""Workload verification: every benchmark compiles, runs, and matches
its pure-Python reference at a reduced scale."""

import pytest

from repro.compiler.driver import compile_source
from repro.sim.executor import execute
from repro.workloads import (
    get_workload,
    mediabench_workloads,
    spec_workloads,
    workload_names,
)

#: Reduced scales keep the whole suite fast while touching every kernel.
_TEST_FRACTION = 0.12


def _scaled(workload):
    return max(1, int(workload.default_scale * _TEST_FRACTION))


@pytest.mark.parametrize("name", workload_names())
def test_workload_matches_reference(name):
    workload = get_workload(name)
    scale = _scaled(workload)
    result = compile_source(workload.source(scale))
    out = execute(result.program)
    assert out.output == workload.expected_output(scale)


@pytest.mark.parametrize("name", workload_names())
def test_workload_is_deterministic(name):
    workload = get_workload(name)
    scale = _scaled(workload)
    program = compile_source(workload.source(scale)).program
    from repro.sim.executor import Executor

    ex = Executor(program)
    assert ex.run().output == ex.run().output


def test_suite_membership():
    assert len(spec_workloads()) == 12
    assert len(mediabench_workloads()) == 13
    # Generated 'gen:' workloads materialize into the registry on
    # demand (test-order dependent), so count only the static suites.
    static = [n for n in workload_names() if not n.startswith("gen:")]
    assert len(static) == 25


def test_unknown_workload_raises():
    with pytest.raises(KeyError):
        get_workload("999.nonesuch")


def test_scale_changes_dynamic_length():
    workload = get_workload("023.eqntott")
    small = execute(compile_source(workload.source(100)).program)
    large = execute(compile_source(workload.source(300)).program)
    assert large.steps > small.steps


@pytest.mark.parametrize("name", workload_names())
def test_every_workload_has_all_three_classes_somewhere(name):
    """Each program must at least produce a classified binary."""
    workload = get_workload(name)
    result = compile_source(workload.source(_scaled(workload)))
    counts = result.class_counts()
    assert sum(counts.values()) > 0


def test_spec_suite_is_ec_heavier_than_mediabench():
    """Table 2 vs Table 4: MediaBench is more PD-dominated; the SPEC
    suite carries the pointer-heavy interpreters."""
    def static_shares(workloads):
        totals = {"n": 0, "p": 0, "e": 0}
        for w in workloads:
            counts = compile_source(
                w.source(max(1, w.default_scale // 8))
            ).class_counts()
            for key in totals:
                totals[key] += counts[key]
        total = sum(totals.values())
        return {k: v / total for k, v in totals.items()}

    spec = static_shares(spec_workloads())
    media = static_shares(mediabench_workloads())
    assert media["p"] > spec["p"]
