"""Property tests for the hardware models: the Figure 3 state machine,
the caches, the BTB, the register caches, and the instruction encoding."""

from hypothesis import given, settings, strategies as st

from repro.isa.encoding import decode, encode
from repro.isa.instruction import Imm, Instruction, Reg
from repro.isa.opcodes import LoadSpec, Opcode
from repro.sim.btb import BranchTargetBuffer
from repro.sim.cache import DirectMappedCache
from repro.sim.machine import CacheConfig
from repro.sim.addr_reg import RegisterCache
from repro.sim.stride_table import (
    FUNCTIONING,
    LEARNING,
    TableEntry,
    UnboundedPredictor,
)


# --- Figure 3 state machine ---------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=50))
def test_entry_invariants_hold_for_any_sequence(addresses):
    """STC mirrors the state bit, and a functioning entry always
    predicts PA."""
    entry = TableEntry(0, addresses[0])
    for addr in addresses[1:]:
        entry.update(addr)
        assert entry.state in (FUNCTIONING, LEARNING)
        assert (entry.stc == 1) == (entry.state == FUNCTIONING)
        if entry.state == FUNCTIONING:
            assert entry.predict() == entry.pa
        else:
            assert entry.predict() is None


@settings(max_examples=100, deadline=None)
@given(
    st.integers(0, 1 << 16),
    st.integers(1, 512),
    st.integers(8, 40),
)
def test_constant_stride_converges(base, stride, length):
    """Any constant-stride stream is fully predicted after training."""
    entry = TableEntry(0, base)
    wrong = 0
    addr = base
    for _ in range(length):
        addr += stride
        if entry.predict() != addr:
            wrong += 1
        entry.update(addr)
    assert wrong <= 2  # New_Stride + one learning step


@settings(max_examples=100, deadline=None)
@given(
    st.integers(0, 1 << 16),
    st.integers(1, 512),
    st.integers(1, 20),
    st.integers(8, 30),
)
def test_stride_change_relearns(base, stride_a, delta, length):
    """After a stride change the machine converges to the new stride."""
    stride_b = stride_a + delta
    entry = TableEntry(0, base)
    addr = base
    for _ in range(5):
        addr += stride_a
        entry.update(addr)
    wrong = 0
    for _ in range(length):
        addr += stride_b
        if entry.predict() != addr:
            wrong += 1
        entry.update(addr)
    assert wrong <= 3


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 255), min_size=2, max_size=60))
def test_unbounded_predictor_rate_bounds(addrs):
    u = UnboundedPredictor()
    for a in addrs:
        u.observe(7, a * 4)
    assert 0.0 <= u.rate(7) <= 1.0
    counters = u.per_load[7]
    assert counters[0] == len(addrs)
    assert counters[1] <= counters[0]


# --- caches -------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=200))
def test_cache_counters_consistent(addresses):
    cache = DirectMappedCache(CacheConfig(size=1024, block_size=64))
    for addr in addresses:
        cache.access(addr)
    assert cache.hits + cache.misses == len(addresses)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=100))
def test_access_then_probe_hits(addresses):
    cache = DirectMappedCache(CacheConfig(size=1024, block_size=64))
    for addr in addresses:
        cache.access(addr)
        assert cache.probe(addr)  # just-filled block must be present


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 1 << 14), min_size=1, max_size=100))
def test_bigger_cache_never_more_misses(addresses):
    small = DirectMappedCache(CacheConfig(size=512, block_size=64))
    big = DirectMappedCache(CacheConfig(size=4096, block_size=64))
    for addr in addresses:
        small.access(addr)
        big.access(addr)
    assert big.misses <= small.misses


# --- BTB ---------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 63), st.booleans()),
        min_size=1,
        max_size=200,
    )
)
def test_btb_counter_stats_consistent(events):
    btb = BranchTargetBuffer(64)
    for pc_index, taken in events:
        addr = 0x1000 + pc_index * 4
        ptaken, ptarget = btb.predict(addr)
        wrong = ptaken != taken or (taken and ptarget != 0x9000)
        btb.update(addr, taken, 0x9000 if taken else 0, wrong)
    assert btb.correct + btb.mispredicts == len(events)
    assert 0.0 <= btb.accuracy <= 1.0


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 6))
def test_btb_always_taken_converges(log_entries):
    btb = BranchTargetBuffer(1 << log_entries)
    addr = 0x4000
    wrong = 0
    for _ in range(50):
        ptaken, ptarget = btb.predict(addr)
        bad = not (ptaken and ptarget == 0x8000)
        wrong += bad
        btb.update(addr, True, 0x8000, bad)
    assert wrong <= 1  # only the cold miss


# --- register cache -----------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(
    st.integers(1, 8),
    st.lists(st.integers(0, 15), min_size=1, max_size=100),
)
def test_register_cache_matches_lru_model(capacity, regs):
    cache = RegisterCache(capacity)
    model = []
    for reg in regs:
        hit = cache.probe(reg)
        assert hit == (reg in model)
        if reg in model:
            model.remove(reg)
            model.append(reg)  # refreshed by probe
        cache.insert(reg)
        if reg in model:
            model.remove(reg)
        model.append(reg)
        if len(model) > capacity:
            model.pop(0)
        assert len(cache) == len(model)


# --- encoding ------------------------------------------------------------------

_REG = st.builds(Reg, st.integers(0, 63), st.sampled_from(["int", "fp"]))
_IMM = st.builds(Imm, st.integers(-(1 << 31), (1 << 31) - 1))


@settings(max_examples=200, deadline=None)
@given(
    st.sampled_from(
        [Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND, Opcode.CMPLT]
    ),
    st.builds(Reg, st.integers(0, 63)),
    st.builds(Reg, st.integers(0, 63)),
    st.one_of(_REG, _IMM),
)
def test_alu_encoding_round_trip(op, dest, a, b):
    inst = Instruction(op, dest, [a, b])
    word, reloc = encode(inst)
    back = decode(word, reloc)
    assert back.opcode is op
    assert back.dest == dest
    assert back.srcs == (a, b)


@settings(max_examples=200, deadline=None)
@given(
    st.sampled_from([Opcode.LD, Opcode.LDB]),
    st.sampled_from(list(LoadSpec)),
    st.builds(Reg, st.integers(0, 63)),
    st.builds(Reg, st.integers(0, 63)),
    st.one_of(st.builds(Reg, st.integers(0, 63)), _IMM),
)
def test_load_encoding_round_trip(op, spec, dest, base, disp):
    inst = Instruction(op, dest, [base, disp], lspec=spec)
    word, reloc = encode(inst)
    back = decode(word, reloc)
    assert back.lspec is spec
    assert back.srcs == (base, disp)
