"""Property tests over the program *generator*: every fingerprint the
grammar can spell must plan into a program that verifies, emulates, and
matches its pure-Python mirror — the registry-backed generalization of
the hand-rolled random programs in test_compiler_props."""

from hypothesis import given, settings, strategies as st

from repro.compiler.driver import compile_source
from repro.sim.executor import execute
from repro.workloads.gen import Fingerprint, generate
from repro.workloads.gen.recipes import build_source, make_recipes


@st.composite
def fingerprints(draw):
    """A valid Fingerprint anywhere on the simplex, textures included."""
    nt = draw(st.integers(0, 100))
    pd = draw(st.integers(0, 100 - nt))
    ec = 100 - nt - pd
    return Fingerprint(
        nt=nt / 100.0,
        pd=pd / 100.0,
        ec=ec / 100.0,
        depth=draw(st.integers(1, 3)),
        alias=draw(st.sampled_from((0.0, 0.3, 0.6))),
        ws=draw(st.sampled_from(("small", "small", "large"))),
    )


@given(fp=fingerprints(), seed=st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_generated_programs_verify_and_match_reference(fp, seed):
    """IR-verifier clean at every opt level, and emulator == mirror."""
    plan = generate(fp, seed)
    source = plan.source_template.replace("__SCALE__", "2")
    expected = plan.reference(2)
    for opt_level in (0, 2):
        result = compile_source(source, opt_level=opt_level, verify=True)
        assert execute(result.program).output == expected


@given(seed=st.integers(0, 10_000), data=st.data())
@settings(max_examples=10, deadline=None)
def test_raw_recipe_assemblies_are_self_checking(seed, data):
    """Even unplanned weight choices keep source and mirror in lockstep.

    This decouples the recipe/mirror contract from the planner: any
    weights the planner might wander through during its search are as
    valid as the ones it settles on.
    """
    import random

    rng = random.Random(f"props:{seed}")
    ws = data.draw(st.sampled_from(("small", "large")))
    depth = data.draw(st.integers(1, 3))
    recipes = make_recipes(rng, ws, depth)
    weights = {
        recipe.role: data.draw(st.integers(0, 12))
        for recipe in recipes
    }
    source = build_source(recipes, weights).replace("__SCALE__", "2")
    from repro.workloads.gen.recipes import reference_output

    expected = reference_output(recipes, weights, 2)
    result = compile_source(source, verify=True)
    assert execute(result.program).output == expected
