"""Property tests: randomly generated programs, compiled at every
optimization level, must agree with a Python oracle."""

from hypothesis import given, settings, strategies as st

from repro.compiler.driver import compile_source
from repro.sim.executor import Executor

_MASK = 0xFFFFFFFF


def _i32(v):
    v &= _MASK
    return v - (1 << 32) if v >= (1 << 31) else v


# --- random expression programs -------------------------------------------

_VARS = ["a", "b", "c", "d"]

_binop = st.sampled_from(["+", "-", "*", "&", "|", "^"])
_shift = st.sampled_from(["<<", ">>"])
_cmp = st.sampled_from(["<", "<=", ">", ">=", "==", "!="])


@st.composite
def expressions(draw, depth=0):
    """A C expression string over _VARS with a Python-evaluable twin."""
    if depth >= 3 or draw(st.booleans()):
        choice = draw(st.integers(0, 1))
        if choice == 0:
            # non-negative literals keep the oracle's literal-wrapping
            # regex unambiguous (no unary-minus confusion)
            return str(draw(st.integers(0, 100)))
        return draw(st.sampled_from(_VARS))
    kind = draw(st.integers(0, 2))
    left = draw(expressions(depth + 1))
    right = draw(expressions(depth + 1))
    if kind == 0:
        op = draw(_binop)
        return f"({left} {op} {right})"
    if kind == 1:
        op = draw(_shift)
        amount = draw(st.integers(0, 8))
        return f"({left} {op} {amount})"
    op = draw(_cmp)
    return f"({left} {op} {right})"


@st.composite
def straightline_programs(draw):
    """A list of assignments followed by printing every variable."""
    lines = [f"int {v} = {draw(st.integers(-50, 50))};" for v in _VARS]
    for _ in range(draw(st.integers(1, 6))):
        target = draw(st.sampled_from(_VARS))
        expr = draw(expressions())
        lines.append(f"{target} = {expr};")
    return lines


def evaluate_oracle(lines):
    """Run the same program in Python with 32-bit semantics."""
    env = {}

    class W:
        def __init__(self, v):
            self.v = _i32(v)

        def _b(self, other, f):
            return W(f(self.v, other.v if isinstance(other, W) else other))

        def __add__(self, o):
            return self._b(o, lambda a, b: a + b)

        def __sub__(self, o):
            return self._b(o, lambda a, b: a - b)

        def __mul__(self, o):
            return self._b(o, lambda a, b: a * b)

        def __and__(self, o):
            return self._b(o, lambda a, b: a & b)

        def __or__(self, o):
            return self._b(o, lambda a, b: a | b)

        def __xor__(self, o):
            return self._b(o, lambda a, b: _i32(a ^ b))

        def __lshift__(self, o):
            return self._b(o, lambda a, b: a << (b & 31))

        def __rshift__(self, o):
            return self._b(o, lambda a, b: a >> (b & 31))

        def __lt__(self, o):
            return W(1 if self.v < (o.v if isinstance(o, W) else o) else 0)

        def __le__(self, o):
            return W(1 if self.v <= (o.v if isinstance(o, W) else o) else 0)

        def __gt__(self, o):
            return W(1 if self.v > (o.v if isinstance(o, W) else o) else 0)

        def __ge__(self, o):
            return W(1 if self.v >= (o.v if isinstance(o, W) else o) else 0)

        def __eq__(self, o):
            return W(1 if self.v == (o.v if isinstance(o, W) else o) else 0)

        def __ne__(self, o):
            return W(1 if self.v != (o.v if isinstance(o, W) else o) else 0)

    for line in lines:
        stmt = line.strip().rstrip(";")
        if stmt.startswith("int "):
            name, _, value = stmt[4:].partition(" = ")
            env[name] = W(int(value))
        else:
            import re

            name, _, expr = stmt.partition(" = ")
            # Wrap every literal so intermediate results use 32-bit
            # semantics exactly like the compiled code.
            py = re.sub(r"\b\d+\b", lambda m: f"W({m.group()})", expr)
            scope = {k: v for k, v in env.items()}
            scope["W"] = W
            env[name.strip()] = eval(  # noqa: S307 - test oracle
                py, {"__builtins__": {}}, scope
            )
    return [env[v].v for v in _VARS]


def run_compiled(lines, opt_level):
    body = "\n    ".join(lines)
    prints = "\n    ".join(f"print_int({v});" for v in _VARS)
    src = f"int main() {{\n    {body}\n    {prints}\n    return 0;\n}}"
    result = compile_source(src, opt_level=opt_level)
    return Executor(result.program).run().output


@settings(max_examples=60, deadline=None)
@given(straightline_programs())
def test_random_straightline_matches_oracle(lines):
    expected = evaluate_oracle(lines)
    assert run_compiled(lines, 2) == expected


@settings(max_examples=25, deadline=None)
@given(straightline_programs())
def test_optimization_levels_agree(lines):
    assert run_compiled(lines, 0) == run_compiled(lines, 2)


# --- random loop programs ----------------------------------------------------


@st.composite
def loop_programs(draw):
    start = draw(st.integers(0, 5))
    bound = draw(st.integers(6, 25))
    step = draw(st.integers(1, 3))
    acc_op = draw(st.sampled_from(["+", "^", "|"]))
    scale = draw(st.integers(1, 9))
    return start, bound, step, acc_op, scale


@settings(max_examples=30, deadline=None)
@given(loop_programs())
def test_random_loops_match_oracle(params):
    start, bound, step, acc_op, scale = params
    src = f"""
    int main() {{
        int i; int acc = 0;
        for (i = {start}; i < {bound}; i += {step}) {{
            acc = acc {acc_op} (i * {scale});
        }}
        print_int(acc);
        return 0;
    }}
    """
    acc = 0
    i = start
    while i < bound:
        term = _i32(i * scale)
        if acc_op == "+":
            acc = _i32(acc + term)
        elif acc_op == "^":
            acc = _i32(acc ^ term)
        else:
            acc = _i32(acc | term)
        i += step
    for level in (0, 2):
        out = Executor(
            compile_source(src, opt_level=level).program
        ).run().output
        assert out == [acc]


# --- random array/global programs ------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.integers(-1000, 1000), min_size=1, max_size=12),
    st.integers(1, 4),
)
def test_array_sum_scan(values, stride):
    n = len(values)
    init = ", ".join(str(v) for v in values)
    src = f"""
    int arr[{n}] = {{{init}}};
    int main() {{
        int i; int s = 0;
        for (i = 0; i < {n}; i += {stride}) {{ s += arr[i]; }}
        print_int(s);
        return 0;
    }}
    """
    expected = _i32(sum(values[::stride]))
    assert Executor(compile_source(src).program).run().output == [expected]
