"""Property tests for the timing model over randomly generated loop
kernels: determinism, structural cycle bounds, and counter consistency."""

from hypothesis import given, settings, strategies as st

from repro.isa import (
    DataItem,
    Function,
    Imm,
    Instruction,
    Label,
    LoadSpec,
    Opcode,
    Program,
    Reg,
    Sym,
)
from repro.sim.executor import execute
from repro.sim.machine import EarlyGenConfig, MachineConfig, SelectionMode
from repro.sim.pipeline import TimingSimulator


def I(op, dest=None, srcs=(), target=None, lspec=LoadSpec.N):  # noqa: E743
    return Instruction(op, dest, srcs, target, lspec)


@st.composite
def loop_kernels(draw):
    """A loop mixing loads, stores, and ALU ops in random order."""
    n_loads = draw(st.integers(1, 4))
    n_alus = draw(st.integers(0, 4))
    has_store = draw(st.booleans())
    iters = draw(st.integers(5, 60))
    spec = draw(st.sampled_from(list(LoadSpec)))
    stride = draw(st.sampled_from([0, 4, 8]))
    return n_loads, n_alus, has_store, iters, spec, stride


def build_trace(params):
    n_loads, n_alus, has_store, iters, spec, stride = params
    p = Program()
    f = Function("main")
    f.append(I(Opcode.LEA, Reg(4), [Sym("arr")]))
    f.append(I(Opcode.MOV, Reg(6), [Imm(0)]))
    f.append(I(Opcode.MOV, Reg(5), [Imm(0)]))
    f.append(Label("loop"))
    for k in range(n_loads):
        f.append(
            I(Opcode.LD, Reg(8 + k), [Reg(4), Imm(4 * k)], lspec=spec)
        )
        f.append(I(Opcode.ADD, Reg(5), [Reg(5), Reg(8 + k)]))
    for k in range(n_alus):
        f.append(I(Opcode.XOR, Reg(20 + k), [Reg(5), Imm(k)]))
    if has_store:
        f.append(I(Opcode.ST, None, [Reg(5), Reg(4), Imm(64)]))
    if stride:
        f.append(I(Opcode.ADD, Reg(4), [Reg(4), Imm(stride)]))
    f.append(I(Opcode.ADD, Reg(6), [Reg(6), Imm(1)]))
    f.append(I(Opcode.BLT, None, [Reg(6), Imm(iters)], "loop"))
    f.append(I(Opcode.HALT))
    p.add_function(f)
    p.add_data(DataItem("arr", 128 + stride * 64))
    p.layout()
    return execute(p).trace


CONFIGS = [
    EarlyGenConfig(0, 0),
    EarlyGenConfig(64, 0, SelectionMode.COMPILER),
    EarlyGenConfig(64, 1, SelectionMode.COMPILER),
    EarlyGenConfig(64, 4, SelectionMode.HARDWARE),
]


@settings(max_examples=40, deadline=None)
@given(loop_kernels())
def test_simulation_is_deterministic(params):
    trace = build_trace(params)
    config = MachineConfig().with_earlygen(CONFIGS[2])
    a = TimingSimulator(trace, config).run()
    b = TimingSimulator(trace, config).run()
    assert a.cycles == b.cycles
    assert a.pred_success == b.pred_success
    assert a.calc_success == b.calc_success


@settings(max_examples=40, deadline=None)
@given(loop_kernels(), st.sampled_from(CONFIGS))
def test_structural_cycle_bounds(params, earlygen):
    trace = build_trace(params)
    config = MachineConfig().with_earlygen(earlygen)
    stats = TimingSimulator(trace, config).run()
    # can never beat the issue width...
    assert stats.cycles >= len(trace) / config.issue_width
    # ...and a sane model never exceeds a full serialization with the
    # worst per-instruction penalty.
    worst = 3 + config.dcache.miss_penalty + config.mispredict_penalty
    assert stats.cycles <= len(trace) * worst + 100
    assert stats.instructions == len(trace)


@settings(max_examples=40, deadline=None)
@given(loop_kernels())
def test_counter_consistency(params):
    trace = build_trace(params)
    config = MachineConfig().with_earlygen(
        EarlyGenConfig(64, 1, SelectionMode.COMPILER)
    )
    stats = TimingSimulator(trace, config).run()
    assert stats.pred_success <= stats.pred_spec_dispatched
    assert stats.pred_spec_dispatched <= stats.pred_loads
    assert stats.calc_success <= stats.calc_spec_dispatched
    assert stats.calc_spec_dispatched <= stats.calc_loads
    assert (
        stats.scheme_counts["n"]
        + stats.scheme_counts["p"]
        + stats.scheme_counts["e"]
        == stats.loads
    )


@settings(max_examples=30, deadline=None)
@given(loop_kernels())
def test_scheme_routing_respects_specifier(params):
    n_loads, n_alus, has_store, iters, spec, stride = params
    trace = build_trace(params)
    config = MachineConfig().with_earlygen(
        EarlyGenConfig(64, 1, SelectionMode.COMPILER)
    )
    stats = TimingSimulator(trace, config).run()
    if spec is LoadSpec.N:
        assert stats.pred_loads == 0 and stats.calc_loads == 0
    elif spec is LoadSpec.P:
        assert stats.pred_loads == stats.loads
    else:
        assert stats.calc_loads == stats.loads


@settings(max_examples=25, deadline=None)
@given(loop_kernels())
def test_wider_machine_never_slower(params):
    trace = build_trace(params)
    narrow = TimingSimulator(
        trace, MachineConfig(issue_width=2, int_alus=2, mem_ports=1)
    ).run()
    wide = TimingSimulator(trace, MachineConfig()).run()
    assert wide.cycles <= narrow.cycles


@settings(max_examples=25, deadline=None)
@given(loop_kernels())
def test_zero_latency_loads_lower_bound(params):
    """No early-gen configuration can beat ideal (zero-latency) loads by
    more than port-contention noise."""
    trace = build_trace(params)
    ideal = TimingSimulator(
        trace, MachineConfig(load_latency=0)
    ).run()
    for earlygen in CONFIGS[1:]:
        stats = TimingSimulator(
            trace, MachineConfig().with_earlygen(earlygen)
        ).run()
        assert stats.cycles >= ideal.cycles - 2
